"""Per-replica health tracking with half-open probe recovery.

Each replica carries a tiny three-state machine:

* ``up`` — serving reads normally;
* ``down`` — marked unhealthy after ``failure_threshold`` consecutive
  faults (or one deadline-based marking); excluded from selection;
* ``probing`` — the half-open state: once ``probe_interval`` seconds
  have passed since the replica went down, exactly **one** read is
  admitted as a probe.  Success promotes the replica back to ``up``;
  failure re-opens the breaker and restarts the interval.

The state machine is driven by :class:`~repro.replica.group.
ReplicaGroup` under the group's state lock, so it needs no locking of
its own.  The clock is injectable so tests can step time explicitly.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["ReplicaHealth", "UP", "DOWN", "PROBING"]

UP = "up"
DOWN = "down"
PROBING = "probing"


class ReplicaHealth:
    """Consecutive-failure marking with a half-open probe breaker."""

    def __init__(self, *, failure_threshold: int = 2,
                 probe_interval: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self._clock = clock
        self.state = UP
        self.consecutive_failures = 0
        self.down_since = 0.0
        # Cumulative counters, surfaced in /replicas rows.
        self.failures = 0
        self.probes = 0
        self.recoveries = 0

    # -- selection ------------------------------------------------------
    def admit(self) -> bool:
        """May a read be routed to this replica right now?

        A ``down`` replica whose probe interval has elapsed transitions
        to ``probing`` and admits exactly one read (the probe); while
        that probe is outstanding no further reads are admitted.
        """
        if self.state == UP:
            return True
        if self.state == PROBING:
            return False
        if self._clock() - self.down_since >= self.probe_interval:
            self.state = PROBING
            self.probes += 1
            return True
        return False

    # -- outcomes -------------------------------------------------------
    def record_success(self) -> None:
        if self.state == PROBING:
            self.recoveries += 1
        self.state = UP
        self.consecutive_failures = 0

    def record_failure(self, *, mark_now: bool = False) -> None:
        """Count one fault; trip the breaker at the threshold.

        ``mark_now`` forces the transition regardless of the count —
        the deadline-based marking path (a read blew its response
        deadline) uses it, as does a probe failure.
        """
        self.failures += 1
        self.consecutive_failures += 1
        tripped = (mark_now or self.state == PROBING
                   or self.consecutive_failures >= self.failure_threshold)
        if tripped:
            self.state = DOWN
            self.down_since = self._clock()

    def snapshot(self) -> dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "probes": self.probes,
            "recoveries": self.recoveries,
        }
