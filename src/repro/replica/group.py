"""ReplicaGroup: N engine replicas of one shard behind one interface.

Reads are load-balanced over the healthy replicas by a pluggable
:mod:`~repro.replica.policies` policy, with per-replica health tracking
(:mod:`~repro.replica.health`) and transparent failover: a read that
hits a faulty replica is retried on a healthy sibling, and only when
*no* sibling is left does :class:`~repro.errors.ReplicaQuorumError`
escape to the coordinator (which degrades the query under fail-soft).

Writes go **leader-first**: replica 0 is the leader, every catalog
mutation is applied there, sealed into a :class:`~repro.replica.
deltalog.DeltaLog` record, and shipped to the attached followers in log
order.  Because every record carries the exact bytes the leader
installed (delta rows, block images) and followers install them under
the leader's segment ids, each follower's catalog is byte-identical to
the leader's at its applied offset — the golden invariant holds on
every replica.  A follower that was detached replays the log tail on
re-attach (catch-up); a leader compaction ships as a snapshot-install.

The fault-injection hooks (``kill`` / ``revive`` / ``inject_fault``)
model process death for tests and the CI smoke job: a killed replica
fails its lease's liveness check, which is what triggers failover.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from .. import sanitizer
from ..build.planner import BuildPlanner
from ..corpus.document import Document
from ..errors import (
    ReplicaDivergenceError,
    ReplicaError,
    ReplicaFaultError,
    ReplicaQuorumError,
    StorageError,
)
from ..index.catalog import IndexSegment
from ..index.rpl import RplEntry
from ..retrieval.engine import TrexEngine
from .deltalog import (
    DeltaLog,
    DocumentRecord,
    ReplicationRecord,
    SegmentDropRecord,
    SegmentInstallRecord,
    SnapshotInstallRecord,
)
from .health import PROBING, UP, ReplicaHealth
from .policies import make_read_policy

__all__ = ["Replica", "ReplicaLease", "ReplicaGroup"]

_T = TypeVar("_T")

#: Cumulative group counters (snapshot keys and ``replica.*`` telemetry).
_COUNTER_KEYS = ("reads", "failovers", "faults", "records_shipped",
                 "catchup_records", "snapshot_installs")


@dataclass
class Replica:
    """One engine replica plus its serving state.

    The mutable attributes are guarded by the owning group's
    ``_state_lock`` (declared here because the attributes live on this
    class; the lock lives on :class:`ReplicaGroup`).
    """

    index: int
    engine: TrexEngine
    health: ReplicaHealth
    inflight: int = 0
    reads: int = 0
    #: Replication offset this replica has applied up to (leader: head).
    applied_offset: int = 0
    #: Attached followers receive shipped records; a detached one
    #: catches up by replay on re-attach.
    attached: bool = True
    #: Fault-injection: a killed replica fails every liveness check.
    alive: bool = True
    #: Fault-injection: number of liveness checks to pass before the
    #: next (single-shot) injected fault; ``None`` means disarmed.
    fault_budget: int | None = None

    __guarded_by__ = {"_state_lock": ("inflight", "reads", "applied_offset",
                                      "attached", "alive", "fault_budget")}

    @property
    def is_leader(self) -> bool:
        return self.index == 0


@dataclass
class ReplicaLease:
    """One granted read on one replica.

    The holder calls :meth:`check` before each unit of work (the
    liveness hook that makes mid-query kills observable), then exactly
    one of :meth:`succeed` / :meth:`fail` / :meth:`release`.
    """

    group: "ReplicaGroup"
    replica: Replica
    _done: bool = field(default=False, init=False)

    @property
    def engine(self) -> TrexEngine:
        return self.replica.engine

    def check(self) -> None:
        """Raise :class:`ReplicaFaultError` if the replica has died."""
        self.group.check_fault(self.replica)

    def succeed(self, *, elapsed: float | None = None) -> None:
        if not self._done:
            self._done = True
            self.group.finish_read(self.replica, ok=True, elapsed=elapsed)

    def fail(self) -> None:
        if not self._done:
            self._done = True
            self.group.finish_read(self.replica, ok=False)

    def release(self) -> None:
        """Return the lease without a health verdict (caller error)."""
        if not self._done:
            self._done = True
            self.group.finish_read(self.replica, ok=None)


class ReplicaGroup:
    """Load-balanced reads and leader-first replicated writes."""

    __guarded_by__ = {"_state_lock": ("_counters",)}

    def __init__(self, engines: Sequence[TrexEngine], *,
                 name: str = "group0",
                 read_policy: str = "round_robin",
                 quorum: int = 1,
                 failure_threshold: int = 2,
                 probe_interval: float = 0.25,
                 read_deadline: float | None = None,
                 policy_seed: int = 1729,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not engines:
            raise ReplicaError("a replica group needs at least one engine")
        self.name = name
        self.read_policy = read_policy
        self.quorum = max(1, quorum)
        self.read_deadline = read_deadline
        self._policy = make_read_policy(read_policy, seed=policy_seed)
        self._state_lock = sanitizer.make_lock(f"{name}-replica-state")
        self.log = DeltaLog(name)
        self.replicas: list[Replica] = [
            Replica(index=index, engine=engine,
                    health=ReplicaHealth(failure_threshold=failure_threshold,
                                         probe_interval=probe_interval,
                                         clock=clock))
            for index, engine in enumerate(engines)]
        self._counters: dict[str, int] = {key: 0 for key in _COUNTER_KEYS}

    @property
    def leader(self) -> Replica:
        return self.replicas[0]

    def __len__(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lease(self, *, exclude: frozenset[int] = frozenset(),
              on_event: Callable[[str], None] | None = None) -> ReplicaLease:
        """Grant a read on one replica chosen by the policy.

        A ``down`` replica whose probe interval has elapsed is admitted
        half-open and *preferred*, so the probe read actually reaches
        it.  Raises :class:`ReplicaQuorumError` when no replica outside
        *exclude* is admissible.
        """
        with self._state_lock:
            eligible: list[Replica] = []
            probe: Replica | None = None
            for replica in self.replicas:
                if replica.index in exclude or not replica.attached:
                    continue
                if replica.health.admit():
                    eligible.append(replica)
                    if replica.health.state == PROBING and probe is None:
                        probe = replica
            if not eligible:
                raise ReplicaQuorumError(self.name, self.healthy_count(),
                                         len(self.replicas))
            chosen = probe if probe is not None else \
                self._policy.choose(eligible)
            chosen.inflight += 1
            chosen.reads += 1
            self._counters["reads"] += 1
        if on_event is not None:
            on_event("read")
        return ReplicaLease(self, chosen)

    def run_read(self, fn: Callable[[TrexEngine], _T], *,
                 on_event: Callable[[str], None] | None = None) -> _T:
        """Run *fn* against a healthy replica, failing over on faults.

        A :class:`ReplicaFaultError` (killed replica, injected fault)
        marks the replica's health and transparently retries on a
        sibling; any other error releases the lease verdict-free and
        propagates — it would fail identically on every replica.
        """
        excluded: set[int] = set()
        while True:
            lease = self.lease(exclude=frozenset(excluded),
                               on_event=on_event)
            started = time.perf_counter()
            try:
                lease.check()
                result = fn(lease.engine)
            except ReplicaFaultError:
                lease.fail()
                excluded.add(lease.replica.index)
                self.note_failover(on_event)
                continue
            except BaseException:
                lease.release()
                raise
            lease.succeed(elapsed=time.perf_counter() - started)
            return result

    def check_fault(self, replica: Replica) -> None:
        """The lease liveness check (see :class:`ReplicaLease`)."""
        with self._state_lock:
            if not replica.alive:
                raise ReplicaFaultError(replica.index, "replica killed")
            if replica.fault_budget is not None:
                if replica.fault_budget <= 0:
                    replica.fault_budget = None
                    raise ReplicaFaultError(replica.index, "injected fault")
                replica.fault_budget -= 1

    def finish_read(self, replica: Replica, *, ok: bool | None,
                    elapsed: float | None = None) -> None:
        with self._state_lock:
            replica.inflight = max(0, replica.inflight - 1)
            if ok is None:
                return
            if ok:
                if (self.read_deadline is not None and elapsed is not None
                        and elapsed > self.read_deadline):
                    # Deadline-based marking: the read finished, but a
                    # replica this slow should stop taking traffic.
                    replica.health.record_failure(mark_now=True)
                else:
                    replica.health.record_success()
            else:
                self._counters["faults"] += 1
                replica.health.record_failure()

    def note_failover(self,
                      on_event: Callable[[str], None] | None = None) -> None:
        with self._state_lock:
            self._counters["failovers"] += 1
        if on_event is not None:
            on_event("failover")

    # ------------------------------------------------------------------
    # Leader-first writes + delta shipping
    # ------------------------------------------------------------------
    @sanitizer.mutates_engine_state
    def add_document(self, document: Document) -> Document:
        """Ingest on the leader, ship the sealed delta rows."""
        engine = self.leader.engine
        engine.add_document(document)
        deltas = []
        for segment_id, rows in engine.last_ingest_deltas:
            segment = engine.catalog.get_segment(segment_id)
            deltas.append((segment_id, segment.kind, segment.term, rows))
        self._replicate_locked(DocumentRecord(document=document,
                                              deltas=tuple(deltas)))
        return document

    @sanitizer.mutates_engine_state
    def warm_segments(self, missing: list[tuple], *,
                      workers: int = 0) -> int:
        """Materialize missing segments on the leader and broadcast the
        built images to followers (see ``TrexEngine.warm_segments``)."""
        engine = self.leader.engine
        planner = BuildPlanner()
        planner.add_missing(missing)
        report, installed = engine.build_plan(planner.plan(),
                                              workers=workers)
        engine.last_build_report = report
        with engine.cost_model.muted():
            for segment in installed:
                self._replicate_locked(SegmentInstallRecord(
                    segment_id=segment.segment_id, kind=segment.kind,
                    term=segment.term, scope=segment.scope,
                    image=engine.catalog.blocks_for(segment).to_bytes()))
        return report.built

    @sanitizer.mutates_engine_state
    def install_entries(self, kind: str, term: str,
                        entries: list[RplEntry],
                        scope: Iterable[int] | None = None) -> IndexSegment:
        """Build one segment from *entries* on the leader and broadcast
        it — the autopilot's chosen-build install path."""
        engine = self.leader.engine
        with engine.cost_model.muted():
            sequence = engine.catalog.build_sequence(kind, entries)
            image = sequence.to_bytes()
            segment = engine.catalog.install_sequence(kind, term, sequence,
                                                      scope=scope)
        self._replicate_locked(SegmentInstallRecord(
            segment_id=segment.segment_id, kind=kind, term=term,
            scope=segment.scope, image=image))
        return segment

    @sanitizer.mutates_engine_state
    def drop_segment(self, segment_id: int) -> None:
        """Retire a segment on every replica (advisor eviction)."""
        catalog = self.leader.engine.catalog
        segment = catalog.get_segment(segment_id)
        catalog.drop_segment(segment_id)
        self._replicate_locked(SegmentDropRecord(segment_id=segment_id,
                                                 kind=segment.kind,
                                                 term=segment.term))

    @sanitizer.mutates_engine_state
    def compact_segments(self, *, ratio: float | None = None,
                         force: bool = False) -> int:
        """Fold delta runs on the leader; each folded segment ships to
        followers as a snapshot-install of the compacted base image."""
        engine = self.leader.engine
        limit = engine.compaction_ratio if ratio is None else ratio
        with engine.cost_model.muted():
            candidates = engine.catalog.compaction_candidates(limit,
                                                              force=force)
            for segment_id in candidates:
                segment = engine.catalog.compact_segment(segment_id)
                self._replicate_locked(SnapshotInstallRecord(
                    segment_id=segment_id, kind=segment.kind,
                    term=segment.term,
                    image=engine.catalog.blocks_for(segment).to_bytes()))
        return len(candidates)

    def _replicate_locked(self, record: ReplicationRecord) -> None:
        """Seal *record* and ship it to every attached follower.

        ``_locked``: only called from the decorated group mutators
        above, whose writer-side contract the runtime sanitizer
        enforces when the group is guarded.
        """
        offset = self.log.append(record)
        self.leader.applied_offset = offset
        shipped = 0
        for replica in self.replicas[1:]:
            if not replica.attached:
                continue
            self._apply_record_locked(replica, offset, record)
            shipped += 1
        if shipped:
            with self._state_lock:
                self._counters["records_shipped"] += shipped
        self.log.truncate_to(min(replica.applied_offset
                                 for replica in self.replicas))

    def _apply_record_locked(self, replica: Replica, offset: int,
                             record: ReplicationRecord) -> None:
        """Install one shipped record on *replica* (follower side)."""
        engine = replica.engine
        try:
            with engine.cost_model.muted():
                if isinstance(record, DocumentRecord):
                    engine.apply_replicated_document(record.document,
                                                     record.deltas)
                elif isinstance(record, SegmentInstallRecord):
                    engine.catalog.install_segment_bytes(
                        record.kind, record.term, record.image,
                        scope=record.scope, segment_id=record.segment_id)
                elif isinstance(record, SnapshotInstallRecord):
                    # A compaction of a segment this replica never got
                    # (a leader-local lazy build) — or whose id a
                    # different local lazy build reused — is a no-op.
                    if self._resident_matches(engine, record):
                        engine.catalog.install_compacted_bytes(
                            record.segment_id, record.image)
                        with self._state_lock:
                            self._counters["snapshot_installs"] += 1
                elif isinstance(record, SegmentDropRecord):
                    if self._resident_matches(engine, record):
                        engine.catalog.drop_segment(record.segment_id)
                else:
                    raise ReplicaDivergenceError(
                        f"replica {replica.index} of group {self.name!r} "
                        f"received unknown record type "
                        f"{type(record).__name__} at offset {offset}")
        except StorageError as exc:
            raise ReplicaDivergenceError(
                f"replica {replica.index} of group {self.name!r} could "
                f"not apply record at offset {offset}: {exc}") from exc
        replica.applied_offset = offset

    @staticmethod
    def _resident_matches(engine: TrexEngine,
                          record: SnapshotInstallRecord | SegmentDropRecord
                          ) -> bool:
        """Does this replica hold the list the record addresses (same
        id, kind and term), as opposed to an unrelated replica-local
        lazy build that reused the id — or nothing at all?"""
        if not engine.catalog.has_segment(record.segment_id):
            return False
        resident = engine.catalog.get_segment(record.segment_id)
        return (resident.kind, resident.term) == (record.kind, record.term)

    # ------------------------------------------------------------------
    # Membership, catch-up and fault injection
    # ------------------------------------------------------------------
    def _replica(self, replica_index: int) -> Replica:
        try:
            return self.replicas[replica_index]
        except IndexError:
            raise ReplicaError(
                f"group {self.name!r} has no replica {replica_index}"
                ) from None

    @sanitizer.mutates_engine_state
    def detach(self, replica_index: int) -> None:
        """Stop shipping to a follower (restart / net-split simulation).

        Its applied offset is retained, so the log keeps the tail it
        will need to replay on :meth:`attach`.
        """
        replica = self._replica(replica_index)
        if replica.is_leader:
            raise ReplicaError("cannot detach the leader")
        with self._state_lock:
            replica.attached = False

    @sanitizer.mutates_engine_state
    def attach(self, replica_index: int) -> int:
        """Re-join a follower: replay the log tail past its offset.

        Returns the number of records replayed (the catch-up depth).
        """
        replica = self._replica(replica_index)
        if replica.is_leader:
            return 0
        pending = self.log.records_since(replica.applied_offset)
        for offset, record in pending:
            self._apply_record_locked(replica, offset, record)
        with self._state_lock:
            replica.attached = True
            if pending:
                self._counters["catchup_records"] += len(pending)
        return len(pending)

    def kill(self, replica_index: int) -> None:
        """Fault-injection: the replica fails every read from now on."""
        replica = self._replica(replica_index)
        with self._state_lock:
            replica.alive = False
            replica.health.record_failure(mark_now=True)

    def revive(self, replica_index: int) -> None:
        """Undo :meth:`kill`; health recovers via the half-open probe."""
        replica = self._replica(replica_index)
        with self._state_lock:
            replica.alive = True

    def inject_fault(self, replica_index: int, *, after: int = 0) -> None:
        """Arm a single-shot fault that fires on the ``after+1``-th
        liveness check — the mid-query kill hook for tests."""
        replica = self._replica(replica_index)
        with self._state_lock:
            replica.fault_budget = after

    @sanitizer.mutates_engine_state
    def reset_replication(self) -> None:
        """Declare every replica in sync at a fresh log origin (after a
        rebuild or reload that was applied identically to all)."""
        self.log.clear()
        with self._state_lock:
            for replica in self.replicas:
                replica.applied_offset = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthy_count(self) -> int:
        """Replicas currently serving (attached, alive, state ``up``)."""
        return sum(1 for replica in self.replicas
                   if replica.attached and replica.alive
                   and replica.health.state == UP)

    @property
    def quorum_met(self) -> bool:
        return self.healthy_count() >= self.quorum

    def counters(self) -> dict[str, int]:
        with self._state_lock:
            return dict(self._counters)

    def snapshot(self) -> dict[str, object]:
        """The ``/replicas`` row for this group."""
        log = self.log.snapshot()
        head = log["head"]
        with self._state_lock:
            rows = []
            for replica in self.replicas:
                row: dict[str, object] = {
                    "replica": replica.index,
                    "role": "leader" if replica.is_leader else "follower",
                    "alive": replica.alive,
                    "attached": replica.attached,
                    "inflight": replica.inflight,
                    "reads": replica.reads,
                    "applied_offset": replica.applied_offset,
                    "lag": head - replica.applied_offset,
                }
                row.update(replica.health.snapshot())
                rows.append(row)
            counters = dict(self._counters)
        healthy = self.healthy_count()
        return {
            "name": self.name,
            "read_policy": self.read_policy,
            "quorum": self.quorum,
            "healthy": healthy,
            "quorum_met": healthy >= self.quorum,
            "log": log,
            "counters": counters,
            "replicas": rows,
        }
