"""Read-balancing policies for replica groups.

A policy picks one replica out of the currently *eligible* set (healthy,
or due for a half-open probe).  All three classics are provided:

* ``round_robin`` — strict rotation, oblivious to load;
* ``least_inflight`` — pick the replica with the fewest reads in
  flight (ties break to the lowest index, so the choice is
  deterministic);
* ``power_of_two`` — sample two distinct replicas with a *seeded* PRNG
  and take the less-loaded one: nearly the balance of least-inflight
  at O(1) bookkeeping, and reproducible because the seed is fixed.

Policies are pure selection logic; inflight accounting, health state
and fault handling all live in :class:`~repro.replica.group.
ReplicaGroup`, which calls ``choose`` under its own state lock.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..errors import ReplicaError

__all__ = ["ReadPolicy", "RoundRobinPolicy", "LeastInflightPolicy",
           "PowerOfTwoPolicy", "READ_POLICIES", "make_read_policy"]


class _Selectable(Protocol):
    """What a policy needs to know about a replica."""

    @property
    def index(self) -> int: ...

    @property
    def inflight(self) -> int: ...


class ReadPolicy(Protocol):
    """Selection strategy over the eligible replicas of one group."""

    name: str

    def choose(self, eligible: Sequence[_Selectable]) -> _Selectable: ...


class RoundRobinPolicy:
    """Strict rotation over replica indexes."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, eligible: Sequence[_Selectable]) -> _Selectable:
        # Rotate over the *group* index space, not the eligible list,
        # so a replica dropping out does not skew the rotation of the
        # survivors.
        ordered = sorted(eligible, key=lambda replica: replica.index)
        for candidate in ordered:
            if candidate.index >= self._next:
                chosen = candidate
                break
        else:
            chosen = ordered[0]
        self._next = chosen.index + 1
        return chosen


class LeastInflightPolicy:
    """Pick the replica with the fewest reads in flight."""

    name = "least_inflight"

    def choose(self, eligible: Sequence[_Selectable]) -> _Selectable:
        return min(eligible,
                   key=lambda replica: (replica.inflight, replica.index))


class PowerOfTwoPolicy:
    """Two seeded random choices, keep the less loaded one."""

    name = "power_of_two"

    def __init__(self, seed: int = 1729) -> None:
        self._rng = random.Random(seed)

    def choose(self, eligible: Sequence[_Selectable]) -> _Selectable:
        if len(eligible) == 1:
            return eligible[0]
        first, second = self._rng.sample(list(eligible), 2)
        if (second.inflight, second.index) < (first.inflight, first.index):
            return second
        return first


READ_POLICIES: tuple[str, ...] = ("round_robin", "least_inflight",
                                  "power_of_two")


def make_read_policy(name: str, *, seed: int = 1729) -> ReadPolicy:
    """Instantiate a read policy by name."""
    if name == "round_robin":
        return RoundRobinPolicy()
    if name == "least_inflight":
        return LeastInflightPolicy()
    if name == "power_of_two":
        return PowerOfTwoPolicy(seed=seed)
    raise ReplicaError(
        f"unknown read policy {name!r}; choose from {READ_POLICIES}")
