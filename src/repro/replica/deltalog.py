"""The replication log: sealed leader mutations, shipped by offset.

Every write a :class:`~repro.replica.group.ReplicaGroup` performs goes
leader-first, then is sealed into one immutable record and appended
here.  Followers apply records **in log order** and remember the offset
they have applied up to; a follower that was detached (restart, net
split simulation) replays ``records_since(applied)`` on re-attach and
is byte-identical to the leader again — the records carry the exact
block images / delta rows the leader installed, not instructions to
recompute them.

Record types mirror the leader's four catalog mutations:

* :class:`DocumentRecord` — one ingested document plus the sealed
  per-segment LSM delta rows the leader appended (PR 5's
  ``append_delta`` path), keyed by leader segment id;
* :class:`SegmentInstallRecord` — a newly built segment (warm-up or an
  autopilot-chosen build) as its serialized block image, installed on
  followers under the leader's segment id;
* :class:`SnapshotInstallRecord` — a leader compaction, propagated as
  the compacted base image which replaces the follower's base and
  clears its delta runs;
* :class:`SegmentDropRecord` — a segment retirement.

Offsets are 1-based append counts: a replica with ``applied == head``
is caught up.  ``truncate_to`` lets the group reclaim records every
attached replica has applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .. import sanitizer
from ..corpus.document import Document
from ..errors import ReplicaDivergenceError
from ..index.rpl import RplEntry

__all__ = ["DocumentRecord", "SegmentInstallRecord",
           "SnapshotInstallRecord", "SegmentDropRecord",
           "ReplicationRecord", "DeltaLog"]


@dataclass(frozen=True)
class DocumentRecord:
    """One leader ingest: the parsed document plus its sealed delta
    rows, ``(leader segment id, kind, term, rows)`` per affected
    segment.  Kind and term identify the list the rows belong to, so a
    follower whose catalog holds a *different* replica-local lazy build
    under the same id skips the rows instead of corrupting it."""

    document: Document
    deltas: tuple[tuple[int, str, str, tuple[RplEntry, ...]], ...]


@dataclass(frozen=True)
class SegmentInstallRecord:
    """A built segment shipped as its serialized block image."""

    segment_id: int
    kind: str
    term: str
    scope: frozenset[int] | None
    image: bytes


@dataclass(frozen=True)
class SnapshotInstallRecord:
    """A leader compaction: the new base image for one segment.

    Kind and term identify the list — a follower holding a different
    replica-local lazy build under the same id skips the record."""

    segment_id: int
    kind: str
    term: str
    image: bytes


@dataclass(frozen=True)
class SegmentDropRecord:
    """A segment retirement (advisor eviction, rebuild).

    Kind and term guard followers against dropping an unrelated
    replica-local lazy build that reused the id."""

    segment_id: int
    kind: str
    term: str


ReplicationRecord = Union[DocumentRecord, SegmentInstallRecord,
                          SnapshotInstallRecord, SegmentDropRecord]


class DeltaLog:
    """Append-only, truncatable record log with 1-based offsets."""

    __guarded_by__ = {"_lock": ("head", "_records", "_base")}

    def __init__(self, name: str = "replica") -> None:
        self._lock = sanitizer.make_lock(f"{name}-deltalog")
        self._records: list[ReplicationRecord] = []
        #: Global offset of the first retained record (0 until the
        #: first truncation).
        self._base = 0
        #: Total records ever appended (== the offset of the newest).
        self.head = 0

    def append(self, record: ReplicationRecord) -> int:
        """Seal *record* and return its offset."""
        with self._lock:
            self._records.append(record)
            self.head += 1
            return self.head

    def records_since(self, applied: int
                      ) -> list[tuple[int, ReplicationRecord]]:
        """``(offset, record)`` for every record past *applied*.

        Raises :class:`ReplicaDivergenceError` when the requested tail
        was already truncated — the follower can no longer catch up by
        replay and needs a full resync.
        """
        with self._lock:
            if applied < self._base:
                raise ReplicaDivergenceError(
                    f"replication log truncated past offset {applied} "
                    f"(oldest retained is {self._base}); follower needs "
                    f"a full resync")
            start = applied - self._base
            return [(self._base + index + 1, record)
                    for index, record in enumerate(self._records[start:],
                                                   start=start)]

    def truncate_to(self, applied: int) -> int:
        """Drop records at or below *applied*; returns how many."""
        with self._lock:
            keep_from = min(max(applied, self._base), self.head)
            dropped = keep_from - self._base
            if dropped > 0:
                del self._records[:dropped]
                self._base = keep_from
            return dropped

    def clear(self) -> None:
        """Forget everything (post-rebuild/reload resync point)."""
        with self._lock:
            self._records = []
            self._base = 0
            self.head = 0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"head": self.head, "base": self._base,
                    "retained": len(self._records)}
