"""repro.replica — replica groups per shard with load-balanced reads,
health/failover, and LSM delta-run shipping.

See ``docs/replication.md`` for the topology, the read policies, the
delta-shipping protocol and the failure matrix.
"""

from .deltalog import (
    DeltaLog,
    DocumentRecord,
    ReplicationRecord,
    SegmentDropRecord,
    SegmentInstallRecord,
    SnapshotInstallRecord,
)
from .group import Replica, ReplicaGroup, ReplicaLease
from .health import DOWN, PROBING, UP, ReplicaHealth
from .policies import (
    READ_POLICIES,
    LeastInflightPolicy,
    PowerOfTwoPolicy,
    ReadPolicy,
    RoundRobinPolicy,
    make_read_policy,
)

__all__ = [
    "DeltaLog",
    "DocumentRecord",
    "ReplicationRecord",
    "SegmentDropRecord",
    "SegmentInstallRecord",
    "SnapshotInstallRecord",
    "Replica",
    "ReplicaGroup",
    "ReplicaLease",
    "ReplicaHealth",
    "UP",
    "DOWN",
    "PROBING",
    "READ_POLICIES",
    "ReadPolicy",
    "RoundRobinPolicy",
    "LeastInflightPolicy",
    "PowerOfTwoPolicy",
    "make_read_policy",
]
