"""Command-line interface for the TReX reproduction.

Subcommands::

    python -m repro corpus    generate a synthetic corpus into a directory
    python -m repro info      collection / summary / index statistics
    python -m repro translate show a NEXI query's (sids, terms) translation
    python -m repro query     evaluate a NEXI query
    python -m repro build     batch-materialize RPL/ERPL segments
    python -m repro advise    run the self-managing index advisor
    python -m repro shard     build / inspect partitioned (sharded) indexes
    python -m repro serve     run the concurrent HTTP query service
    python -m repro stats     fetch /stats from a running server
    python -m repro replica   inspect replica groups on a running server

Corpora are directories of ``*.xml`` files; docids follow sorted
filename order.  The ``--alias`` option selects the INEX alias mapping
(``ieee``, ``wikipedia`` or ``none``).
"""

from __future__ import annotations

import argparse
import sys

from .backend import BACKEND_NAMES, COMPRESSIONS
from .corpus.alias import AliasMapping
from .corpus.generator import SyntheticIEEECorpus, SyntheticWikipediaCorpus
from .corpus.loader import dump_collection, load_collection
from .errors import TrexError
from .retrieval.engine import METHODS, TrexEngine
from .selfmanage.advisor import IndexAdvisor
from .storage.blocks import DEFAULT_BLOCK_SIZE
from .selfmanage.workload import Workload, WorkloadQuery
from .summary.variants import AKIndex, IncomingSummary, TagSummary

__all__ = ["main", "build_parser"]

_ALIASES = {
    "ieee": AliasMapping.inex_ieee,
    "wikipedia": AliasMapping.inex_wikipedia,
    "none": AliasMapping.identity,
}

_SUMMARIES = ("incoming", "tag", "ak1", "ak2")


def _make_engine(args: argparse.Namespace) -> TrexEngine:
    collection = load_collection(args.corpus)
    alias = _ALIASES[args.alias]()
    if args.summary == "tag":
        summary = TagSummary(collection, alias=alias)
    elif args.summary.startswith("ak"):
        summary = AKIndex(collection, k=int(args.summary[2:]), alias=alias)
    else:
        summary = IncomingSummary(collection, alias=alias)
    return TrexEngine(collection, summary, block_size=args.block_size,
                      backend=getattr(args, "backend", "pager"),
                      compression=getattr(args, "compress", "none"))


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.kind == "ieee":
        collection = SyntheticIEEECorpus(num_docs=args.docs, seed=args.seed).build()
    else:
        collection = SyntheticWikipediaCorpus(num_docs=args.docs,
                                              seed=args.seed).build()
    written = dump_collection(collection, args.out)
    print(f"wrote {len(written)} documents to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    info = engine.describe()
    print(f"collection: {info['collection']}")
    print(f"summary:    {info['summary']}")
    print(f"Elements:     {info['elements_rows']:>8} rows  "
          f"{info['elements_bytes']:>10} bytes")
    print(f"PostingLists: {info['postings_rows']:>8} rows  "
          f"{info['postings_bytes']:>10} bytes")
    print(f"catalog:      {len(info['segments']):>8} segments  "
          f"{info['catalog_bytes']:>10} bytes")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    translated = engine.translate(args.nexi, vague=not args.strict)
    print(f"query: {translated.query}")
    print(f"target pattern: {translated.target_pattern} "
          f"({len(translated.target_sids)} sids)")
    for index, clause in enumerate(translated.clauses):
        role = "target" if clause.is_target else "support"
        print(f"clause {index} ({role}): path={clause.pattern}")
        print(f"  sids:  {sorted(clause.sids)}")
        print(f"  terms: {list(clause.terms)}"
              + (f"  excluded: {list(clause.excluded_terms)}"
                 if clause.excluded_terms else ""))
    print(f"totals: {translated.num_sids} sids, {translated.num_terms} terms")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    result = engine.evaluate(args.nexi, k=args.k, method=args.method,
                             vague=not args.strict,
                             mode="flat" if args.flat else "nexi")
    print(f"method={result.stats.method} cost={result.stats.cost:.1f} "
          f"answers={len(result.hits)}")
    for rank, hit in enumerate(result, start=1):
        label = engine.summary.label(hit.sid)
        print(f"{rank:>4}. score={hit.score:.4f} doc={hit.docid} "
              f"<{label}> span=[{hit.start_pos},{hit.end_pos}]")
    if args.run_output:
        from .evaluation.runfile import write_run
        with open(args.run_output, "a", encoding="utf-8") as fh:
            write_run(fh, args.topic, result, tag=args.run_tag)
        print(f"appended {len(result.hits)} run lines to {args.run_output}")
    return 0


def _parse_workload_file(path: str) -> Workload:
    queries = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise TrexError(
                    f"{path}:{line_no}: expected 'id<TAB>k<TAB>freq<TAB>nexi'")
            qid, k, freq, nexi = parts
            queries.append(WorkloadQuery(qid, nexi, int(k), float(freq)))
    return Workload(queries, normalize=True)


def _cmd_build(args: argparse.Namespace) -> int:
    import time

    from .build import BuildPlanner

    engine = _make_engine(args)
    kinds = tuple(kind.strip() for kind in args.kinds.split(",") if kind.strip())
    planner = BuildPlanner()
    if args.workload:
        workload = _parse_workload_file(args.workload)
        for wq in workload:
            for target in engine.plan_for_query(wq.nexi, kinds,
                                                scope=args.scope):
                planner.add_target(target)
    else:
        if args.terms:
            terms = list(dict.fromkeys(args.terms))
        else:
            terms = sorted({row[0] for row in engine.postings.scan()})
        for term in terms:
            for kind in kinds:
                planner.add(kind, term)
    started = time.perf_counter()
    report = engine.build_segments(planner.plan(), workers=args.workers)
    elapsed = time.perf_counter() - started
    print(f"requested {report.requested} segments: built {report.built}, "
          f"reused {report.reused} ({report.entries} entries, "
          f"{report.bytes_built} bytes, "
          f"{report.collection_scans} collection scans, "
          f"workers={max(args.workers, 1)}) in {elapsed:.3f}s")
    if args.verbose:
        for line in report.segments:
            print(f"  {line}")
    if args.out:
        engine.save_indexes(args.out)
        print(f"saved index tables to {args.out} "
              f"(backend={engine.backend}, compression={engine.compression})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    plan = engine.explain(args.nexi, k=args.k)
    print(f"query:   {plan['query']}")
    print(f"target:  {plan['target_pattern']} "
          f"({plan['num_sids']} sids, {plan['num_terms']} terms)")
    if plan["comparisons"]:
        print(f"filters: {', '.join(plan['comparisons'])}")
    print(f"method:  {plan['chosen_method']}")
    for clause in plan["clauses"]:
        print(f"clause ({clause['role']}) {clause['pattern']}:")
        extents = ", ".join(f"{sid}:{size}"
                            for sid, size in clause["extent_sizes"].items())
        print(f"  extents (sid:size): {extents}")
        for term, info in clause["terms"].items():
            rpl = info["rpl"] or "-"
            erpl = info["erpl"] or "-"
            print(f"  term {term!r}: postings={info['postings']} "
                  f"rpl={rpl} erpl={erpl}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    workload = _parse_workload_file(args.workload)
    advisor = IndexAdvisor(engine)
    plan = advisor.recommend(workload, args.budget, method=args.selector,
                             compression=args.compression)
    for line in plan.describe():
        print(line)
    print(f"baseline (ERA-only) cost: {advisor.baseline_cost(workload):.1f}")
    print(f"expected cost under plan: {advisor.expected_cost(workload, plan):.1f}")
    if args.compression:
        recommended = advisor.recommend_compression(workload)
        print("recommended codec per kind: "
              + ", ".join(f"{kind}={codec}"
                          for kind, codec in sorted(recommended.items())))
        report = advisor.backend_report(workload)
        print(f"{'backend':>8} {'codec':>6} {'size B':>10} {'t_build':>10}")
        for backend in sorted(report):
            for codec in sorted(report[backend]):
                row = report[backend][codec]
                print(f"{backend:>8} {codec:>6} {row['size_bytes']:>10.0f} "
                      f"{row['t_build']:>10.1f}")
    if args.apply:
        applied = advisor.apply(workload, plan)
        print(f"materialized {len(applied.segments)} segments "
              f"({applied.total_bytes} bytes)")
        print(f"achieved cost: {advisor.achieved_cost(workload, applied):.1f}")
    return 0


def _make_sharded_engine(args: argparse.Namespace) -> "ShardedEngine":
    from .shard import ShardedEngine

    collection = load_collection(args.corpus)
    alias = _ALIASES[args.alias]()
    return ShardedEngine(collection, args.shards, policy=args.policy,
                         alias=alias, block_size=args.block_size,
                         backend=getattr(args, "backend", "pager"),
                         compression=getattr(args, "compress", "none"))


def _print_shard_rows(rows: list[dict]) -> None:
    documents = [row["documents"] for row in rows]
    mean = sum(documents) / len(documents) if documents else 0.0
    print(f"{'shard':>5} {'documents':>9} {'elements':>9} {'segments':>8} "
          f"{'catalog B':>10} {'probes':>7} {'pruned':>7} {'timeouts':>8} "
          f"{'deltas':>6} {'delta B':>8} {'repl':>4}")
    for row in rows:
        replicas = row.get("replicas", 1)
        healthy = row.get("replicas_healthy", replicas)
        print(f"{row['shard']:>5} {row['documents']:>9} "
              f"{row['elements_rows']:>9} {row['segments']:>8} "
              f"{row['catalog_bytes']:>10} {row['probes']:>7} "
              f"{row['pruned']:>7} {row['timeouts']:>8} "
              f"{row.get('delta_runs', 0):>6} {row.get('delta_bytes', 0):>8} "
              f"{healthy}/{replicas}")
    if documents and mean:
        skew = max(documents) / mean
        print(f"balance: {len(documents)} shards, "
              f"{min(documents)}-{max(documents)} docs "
              f"(max/mean skew {skew:.2f})")


def _cmd_shard_build(args: argparse.Namespace) -> int:
    from .build import BuildPlanner

    engine = _make_sharded_engine(args)
    for shard in engine.shards:
        planner = BuildPlanner()
        for term in sorted({row[0] for row in shard.engine.postings.scan()}):
            planner.add("rpl", term)
        shard.engine.build_segments(planner.plan(), workers=args.workers)
    engine.save_indexes(args.out)
    print(f"partitioned {len(engine.collection)} documents into "
          f"{engine.num_shards} shards ({args.policy}) -> {args.out}")
    _print_shard_rows(engine.shard_snapshot())
    return 0


def _cmd_shard_stats(args: argparse.Namespace) -> int:
    engine = _make_sharded_engine(args)
    if args.indexes:
        engine.load_indexes(args.indexes)
    info = engine.describe()
    print(f"collection: {info['collection']}")
    print(f"partition:  {info['partition']}")
    _print_shard_rows(engine.shard_snapshot())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import (QueryService, ServiceConfig, make_server,
                          serve_until_shutdown)

    engine = _make_engine(args)
    config = ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_capacity=args.cache_size,
        default_deadline=args.deadline,
        autopilot_interval=None if args.no_autopilot else args.autopilot_interval,
        autopilot_budget=args.autopilot_budget,
        autopilot_selector=args.autopilot_selector,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_deadline=args.shard_deadline,
        fail_soft=not args.no_fail_soft,
        build_workers=args.build_workers,
        auto_compact=not args.no_auto_compact,
        replicas=args.replicas,
        read_policy=args.read_policy,
        quorum=args.quorum,
        backend=args.backend,
        compression=args.compress,
    )
    with QueryService(engine, config) as service:
        server = make_server(service, args.host, args.port,
                             verbose=args.verbose)
        host, port = server.server_address[:2]
        sharding = (f", {args.shards} shards ({args.shard_policy})"
                    if args.shards > 1 else "")
        replication = (f", {args.replicas} replicas ({args.read_policy})"
                       if args.replicas > 1 else "")
        print(f"serving {args.corpus} on http://{host}:{port} "
              f"({config.workers} workers, cache={config.cache_capacity}, "
              f"autopilot="
              f"{'off' if args.no_autopilot else f'{args.autopilot_interval}s'}"
              f"{sharding}{replication})")
        print("endpoints: /search /explain /ingest /stats /replicas "
              "/healthz /autopilot/cycle  (Ctrl-C or SIGTERM to stop)")
        serve_until_shutdown(server, service)
        print("drained; bye")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    url = f"http://{args.host}:{args.port}/stats"
    try:
        with urlopen(url, timeout=args.timeout) as response:
            stats = json.loads(response.read().decode("utf-8"))
    except (URLError, OSError) as err:
        print(f"error: cannot reach {url}: {err}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    engine = stats.get("engine", {})
    print(f"uptime:    {stats.get('uptime_seconds', 0):.1f}s  "
          f"epoch={stats.get('epoch')}")
    print(f"engine:    {engine.get('documents')} documents, "
          f"{engine.get('segments')} segments, "
          f"{engine.get('catalog_bytes')} catalog bytes, "
          f"block_size={engine.get('block_size')}")
    storage = stats.get("storage", {})
    if storage:
        print(f"storage:   backend={storage.get('backend')} "
              f"compression={storage.get('compression')} "
              f"({storage.get('compressed_segments', 0)} compressed segments, "
              f"{storage.get('size_bytes', 0)}/{storage.get('flat_bytes', 0)} "
              f"stored/flat bytes, "
              f"ratio={storage.get('compression_ratio', 1.0)})")
        for kind in sorted(storage.get("kinds", {})):
            row = storage["kinds"][kind]
            print(f"  {kind:6s} {row.get('segments', 0):>4} segments  "
                  f"{row.get('size_bytes', 0):>10} bytes on disk  "
                  f"({row.get('flat_bytes', 0)} flat)")
    cache = stats.get("block_cache", {})
    print(f"block cache: {cache.get('resident')}/{cache.get('capacity')} "
          f"resident, hits={cache.get('hits')} misses={cache.get('misses')} "
          f"evictions={cache.get('evictions')} "
          f"hit_rate={cache.get('hit_rate')}")
    counters = stats.get("telemetry", {}).get("counters", {})
    for name in ("blocks.read", "blocks.decoded", "blocks.skipped",
                 "blocks.entries_decoded", "rows.skipped"):
        print(f"{name:24s} {counters.get(name, 0)}")
    result_cache = stats.get("cache", {})
    print(f"result cache: {result_cache}")
    shards = stats.get("shards")
    if shards:
        print(f"shards ({len(shards)}):")
        for row in shards:
            print(f"  shard {row.get('shard')}: {row.get('documents')} docs, "
                  f"{row.get('segments')} segments, "
                  f"epoch={row.get('epoch')}, probes={row.get('probes')} "
                  f"pruned={row.get('pruned')} timeouts={row.get('timeouts')}")
    return 0


def _cmd_replica_status(args: argparse.Namespace) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    url = f"http://{args.host}:{args.port}/replicas"
    try:
        with urlopen(url, timeout=args.timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (URLError, OSError) as err:
        print(f"error: cannot reach {url}: {err}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not payload.get("groups"):
        print("engine is not sharded: no replica groups")
        return 0
    print(f"replicas={payload.get('replicas', 1)} "
          f"policy={payload.get('read_policy')} "
          f"quorum={payload.get('quorum')}")
    counters = payload.get("counters", {})
    print("counters: " + ", ".join(f"{key}={counters[key]}"
                                   for key in sorted(counters)))
    for group in payload["groups"]:
        log = group.get("log", {})
        quorum = "ok" if group.get("quorum_met") else "LOST"
        print(f"shard {group['shard']} ({group['name']}): "
              f"healthy {group['healthy']}/{len(group['replicas'])} "
              f"quorum={quorum} log head={log.get('head')} "
              f"retained={log.get('retained')}")
        for row in group["replicas"]:
            flags = []
            if not row["alive"]:
                flags.append("killed")
            if not row["attached"]:
                flags.append("detached")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            print(f"  r{row['replica']} {row['role']:<8} "
                  f"state={row['state']:<7} reads={row['reads']:<6} "
                  f"applied={row['applied_offset']} lag={row['lag']}"
                  f"{suffix}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.__main__ import main as analysis_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.no_interprocedural:
        argv.append("--no-interprocedural")
    if args.cache:
        argv += ["--cache", args.cache]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    if args.fix:
        argv.append("--fix")
    argv += ["--format", args.format]
    return analysis_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TReX: self-managing top-k indexes for XML retrieval "
                    "(ICDE 2007 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    corpus = sub.add_parser("corpus", help="generate a synthetic corpus")
    corpus.add_argument("--kind", choices=("ieee", "wikipedia"), default="ieee")
    corpus.add_argument("--docs", type=int, default=20)
    corpus.add_argument("--seed", type=int, default=42)
    corpus.add_argument("--out", required=True, help="output directory")
    corpus.set_defaults(func=_cmd_corpus)

    def add_engine_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("corpus", help="directory of .xml files")
        p.add_argument("--alias", choices=sorted(_ALIASES), default="none")
        p.add_argument("--summary", choices=_SUMMARIES, default="incoming")
        p.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE,
                       help="entries per compressed index block "
                            f"(default {DEFAULT_BLOCK_SIZE})")
        p.add_argument("--backend", choices=BACKEND_NAMES, default="pager",
                       help="storage backend for saved indexes "
                            "(see docs/storage.md)")
        p.add_argument("--compress", choices=COMPRESSIONS, default="none",
                       help="block codec for newly built segments")

    info = sub.add_parser("info", help="collection and index statistics")
    add_engine_args(info)
    info.set_defaults(func=_cmd_info)

    translate = sub.add_parser("translate", help="show a query's translation")
    add_engine_args(translate)
    translate.add_argument("nexi", help="NEXI query string")
    translate.add_argument("--strict", action="store_true",
                           help="strict (non-vague) interpretation")
    translate.set_defaults(func=_cmd_translate)

    query = sub.add_parser("query", help="evaluate a NEXI query")
    add_engine_args(query)
    query.add_argument("nexi", help="NEXI query string")
    query.add_argument("--k", type=int, default=None, help="top-k (default: all)")
    query.add_argument("--method", choices=METHODS, default="auto")
    query.add_argument("--strict", action="store_true")
    query.add_argument("--flat", action="store_true",
                       help="paper-style single-task evaluation")
    query.add_argument("--run-output", default=None,
                       help="append results to an INEX/TREC-style run file")
    query.add_argument("--topic", default="topic",
                       help="topic id for --run-output lines")
    query.add_argument("--run-tag", default="trex-repro",
                       help="run tag for --run-output lines")
    query.set_defaults(func=_cmd_query)

    build = sub.add_parser(
        "build", help="batch-materialize RPL/ERPL segments "
                      "(one shared scan; optional process pool)")
    add_engine_args(build)
    build.add_argument("--terms", nargs="*", default=None,
                       help="terms to build (default: every indexed term)")
    build.add_argument("--workload", default=None,
                       help="TSV workload file; builds each query's plan")
    build.add_argument("--scope", choices=("universal", "query", "flat"),
                       default="universal",
                       help="segment scope for --workload plans")
    build.add_argument("--kinds", default="rpl,erpl",
                       help="comma-separated kinds (default rpl,erpl)")
    build.add_argument("--workers", type=int, default=0,
                       help="build worker processes (0 = in-process)")
    build.add_argument("--out", default=None,
                       help="save index tables to this directory")
    build.add_argument("--verbose", action="store_true",
                       help="list every built segment")
    build.set_defaults(func=_cmd_build)

    explain = sub.add_parser("explain", help="show the evaluation plan")
    add_engine_args(explain)
    explain.add_argument("nexi", help="NEXI query string")
    explain.add_argument("--k", type=int, default=None)
    explain.set_defaults(func=_cmd_explain)

    advise = sub.add_parser("advise", help="self-managing index selection")
    add_engine_args(advise)
    advise.add_argument("--workload", required=True,
                        help="TSV file: id<TAB>k<TAB>freq<TAB>nexi")
    advise.add_argument("--budget", type=int, required=True,
                        help="disk budget in bytes")
    advise.add_argument("--selector", choices=("greedy", "ilp"), default="greedy")
    advise.add_argument("--compression", action="store_true",
                        help="let the selector trade compressed indexes "
                             "(smaller, decompress-charged) against flat ones")
    advise.add_argument("--apply", action="store_true",
                        help="materialize the plan and measure achieved cost")
    advise.set_defaults(func=_cmd_advise)

    shard = sub.add_parser("shard",
                           help="build / inspect partitioned indexes")
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    def add_shard_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("corpus", help="directory of .xml files")
        p.add_argument("--shards", type=int, default=4,
                       help="number of document shards")
        p.add_argument("--policy", choices=("hash", "range"), default="hash",
                       help="document-to-shard routing policy")
        p.add_argument("--alias", choices=sorted(_ALIASES), default="none")
        p.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
        p.add_argument("--backend", choices=BACKEND_NAMES, default="pager")
        p.add_argument("--compress", choices=COMPRESSIONS, default="none")

    shard_build = shard_sub.add_parser(
        "build", help="partition a corpus and save per-shard indexes")
    add_shard_args(shard_build)
    shard_build.add_argument("--out", required=True,
                             help="output directory (one shard{i}/ each)")
    shard_build.add_argument("--workers", type=int, default=0,
                             help="build worker processes per shard "
                                  "(0 = in-process)")
    shard_build.set_defaults(func=_cmd_shard_build)

    shard_stats = shard_sub.add_parser(
        "stats", help="per-shard statistics and balance")
    add_shard_args(shard_stats)
    shard_stats.add_argument("--indexes", default=None,
                             help="load previously saved per-shard indexes")
    shard_stats.set_defaults(func=_cmd_shard_stats)

    serve = sub.add_parser("serve", help="run the concurrent HTTP query service")
    add_engine_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=4,
                       help="query worker threads")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue bound (reject when full)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="seconds a request may wait for a worker")
    serve.add_argument("--autopilot-interval", type=float, default=30.0,
                       help="seconds between self-managing index cycles")
    serve.add_argument("--autopilot-budget", type=int, default=1 << 20,
                       help="autopilot disk budget in bytes")
    serve.add_argument("--autopilot-selector", choices=("greedy", "ilp"),
                       default="greedy")
    serve.add_argument("--no-autopilot", action="store_true",
                       help="disable background index self-management")
    serve.add_argument("--build-workers", type=int, default=0,
                       help="worker processes for segment warm-up builds")
    serve.add_argument("--no-auto-compact", action="store_true",
                       help="leave LSM delta compaction to POST /compact")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition the engine into N document shards")
    serve.add_argument("--shard-policy", choices=("hash", "range"),
                       default="hash")
    serve.add_argument("--shard-deadline", type=float, default=None,
                       help="seconds each shard may spend per query")
    serve.add_argument("--no-fail-soft", action="store_true",
                       help="shard timeouts become 504s instead of "
                            "degraded partial results")
    serve.add_argument("--replicas", type=int, default=1,
                       help="engine replicas per shard (reads are "
                            "load-balanced; writes ship leader-first)")
    serve.add_argument("--read-policy",
                       choices=("round_robin", "least_inflight",
                                "power_of_two"),
                       default="round_robin",
                       help="replica read-balancing policy")
    serve.add_argument("--quorum", type=int, default=1,
                       help="healthy replicas per shard below which "
                            "/replicas reports quorum lost")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request")
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser("stats", help="fetch /stats from a running server")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8080)
    stats.add_argument("--timeout", type=float, default=5.0)
    stats.add_argument("--json", action="store_true",
                       help="print the raw JSON snapshot")
    stats.set_defaults(func=_cmd_stats)

    replica = sub.add_parser(
        "replica", help="inspect replica groups on a running server")
    replica_sub = replica.add_subparsers(dest="replica_command",
                                         required=True)
    status = replica_sub.add_parser(
        "status", help="fetch /replicas and print per-group topology")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=8080)
    status.add_argument("--timeout", type=float, default=5.0)
    status.add_argument("--json", action="store_true",
                        help="print the raw JSON snapshot")
    status.set_defaults(func=_cmd_replica_status)

    analyze = sub.add_parser(
        "analyze", help="run the invariant lint suite (docs/analysis.md)")
    analyze.add_argument("paths", nargs="*", default=["src/repro"],
                         help="files or directories (default: src/repro)")
    analyze.add_argument("--select", default=None,
                         help="comma-separated rule ids or prefixes")
    analyze.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text")
    analyze.add_argument("--list-rules", action="store_true")
    analyze.add_argument("--no-interprocedural", action="store_true",
                         help="single-function rules only")
    analyze.add_argument("--cache", default=None, metavar="PATH",
                         help="incremental result cache file")
    analyze.add_argument("--baseline", default=None, metavar="PATH",
                         help="filter findings recorded in this baseline")
    analyze.add_argument("--write-baseline", default=None, metavar="PATH",
                         help="record current findings as the baseline")
    analyze.add_argument("--fix", action="store_true",
                         help="rewrite unused imports (TRX601) in place")
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TrexError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
