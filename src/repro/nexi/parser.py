"""Recursive-descent parser for NEXI retrieval queries.

Accepts the NEXI content-and-structure subset the paper evaluates:

* paths of ``/`` and ``//`` steps over tag names and ``*``;
* predicates in ``[...]`` combining ``about()`` clauses with ``and`` /
  ``or`` (parentheses allowed);
* about targets ``.`` or a dot-relative path such as ``.//bdy``;
* keyword lists with ``+`` / ``-`` modifiers and quoted phrases.

Whitespace is insignificant outside quoted phrases (the paper's own
topies write ``about (...)`` with a space).  Errors raise
:class:`~repro.errors.NexiSyntaxError` with a character offset.
"""

from __future__ import annotations

from ..errors import NexiSyntaxError
from ..summary.matcher import PathPattern, PathStep
from .ast import (
    AboutClause,
    BooleanPredicate,
    ComparisonClause,
    Keyword,
    NexiQuery,
    Predicate,
    QueryStep,
)

__all__ = ["parse_nexi"]

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    # Low-level helpers --------------------------------------------------
    def error(self, message: str) -> NexiSyntaxError:
        return NexiSyntaxError(message, self.pos)

    def eof(self) -> bool:
        return self.pos >= len(self.source)

    def skip_ws(self) -> None:
        while not self.eof() and self.source[self.pos].isspace():
            self.pos += 1

    def peek(self, length: int = 1) -> str:
        return self.source[self.pos: self.pos + length]

    def accept(self, literal: str) -> bool:
        if self.source.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise self.error(f"expected {literal!r}")

    def accept_word(self, word: str) -> bool:
        """Accept *word* only when followed by a non-name character."""
        end = self.pos + len(word)
        if (self.source.startswith(word, self.pos)
                and (end >= len(self.source) or self.source[end] not in _NAME_CHARS)):
            self.pos = end
            return True
        return False

    def scan_name(self) -> str:
        start = self.pos
        if self.accept("*"):
            return "*"
        while not self.eof() and self.source[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a tag name or '*'")
        return self.source[start: self.pos]

    # Grammar ------------------------------------------------------------
    def parse_query(self) -> NexiQuery:
        steps: list[QueryStep] = []
        self.skip_ws()
        while not self.eof():
            steps.append(self.parse_step())
            self.skip_ws()
        if not steps:
            raise self.error("empty query")
        return NexiQuery(tuple(steps), source=self.source)

    def parse_step(self) -> QueryStep:
        pattern_steps: list[PathStep] = []
        while True:
            self.skip_ws()
            if self.accept("//"):
                axis = "descendant"
            elif self.accept("/"):
                axis = "child"
            else:
                break
            label = self.scan_name()
            pattern_steps.append(PathStep(axis, label))
            # a predicate ends the path segment of this query step
            self.skip_ws()
            if self.peek() == "[":
                break
        if not pattern_steps:
            raise self.error("expected a path step")
        predicate = None
        if self.peek() == "[":
            self.expect("[")
            predicate = self.parse_predicate()
            self.skip_ws()
            self.expect("]")
        return QueryStep(tuple(pattern_steps), predicate)

    def parse_predicate(self) -> Predicate:
        left = self.parse_predicate_term("or")
        return left

    def parse_predicate_term(self, level: str) -> Predicate:
        if level == "or":
            operands = [self.parse_predicate_term("and")]
            while True:
                self.skip_ws()
                if not self.accept_word("or"):
                    break
                operands.append(self.parse_predicate_term("and"))
            if len(operands) == 1:
                return operands[0]
            return BooleanPredicate("or", tuple(operands))
        # 'and' level
        operands = [self.parse_predicate_atom()]
        while True:
            self.skip_ws()
            if not self.accept_word("and"):
                break
            operands.append(self.parse_predicate_atom())
        if len(operands) == 1:
            return operands[0]
        return BooleanPredicate("and", tuple(operands))

    def parse_predicate_atom(self) -> Predicate:
        self.skip_ws()
        if self.accept("("):
            inner = self.parse_predicate()
            self.skip_ws()
            self.expect(")")
            return inner
        if self.accept_word("about"):
            return self.parse_about()
        if self.peek() == ".":
            return self.parse_comparison()
        raise self.error("expected 'about(', a comparison, or '('")

    def parse_comparison(self) -> ComparisonClause:
        relative = self.parse_relative_path()
        self.skip_ws()
        op = None
        for candidate in ComparisonClause.OPS:
            if self.accept(candidate):
                op = candidate
                break
        if op is None:
            raise self.error("expected a comparison operator")
        self.skip_ws()
        value = self.parse_comparison_value(op)
        return ComparisonClause(relative, op, value)

    def parse_comparison_value(self, op: str) -> float | str:
        if self.peek() == '"':
            self.pos += 1
            end = self.source.find('"', self.pos)
            if end < 0:
                raise self.error("unterminated string literal")
            text = self.source[self.pos: end].strip().lower()
            self.pos = end + 1
            if not text:
                raise self.error("empty string literal")
            if op not in ("=", "!="):
                raise self.error("strings support only = and !=")
            return text
        start = self.pos
        while (not self.eof()
               and (self.source[self.pos].isdigit()
                    or self.source[self.pos] in ".-+eE")):
            self.pos += 1
        literal = self.source[start: self.pos]
        try:
            return float(literal)
        except ValueError:
            raise self.error(f"expected a number or quoted string, "
                             f"got {literal!r}") from None

    def parse_about(self) -> AboutClause:
        self.skip_ws()
        self.expect("(")
        self.skip_ws()
        relative = self.parse_relative_path()
        self.skip_ws()
        self.expect(",")
        keywords = self.parse_keywords()
        self.expect(")")
        return AboutClause(relative, tuple(keywords))

    def parse_relative_path(self) -> PathPattern:
        self.expect(".")
        steps: list[PathStep] = []
        while True:
            if self.accept("//"):
                axis = "descendant"
            elif self.accept("/"):
                axis = "child"
            else:
                break
            steps.append(PathStep(axis, self.scan_name()))
        return PathPattern(tuple(steps))

    def parse_keywords(self) -> list[Keyword]:
        keywords: list[Keyword] = []
        while True:
            self.skip_ws()
            if self.eof():
                raise self.error("unterminated about() keyword list")
            ch = self.peek()
            if ch == ")":
                break
            modifier = ""
            if ch in "+-":
                modifier = ch
                self.pos += 1
                ch = self.peek()
            if ch == '"':
                self.pos += 1
                end = self.source.find('"', self.pos)
                if end < 0:
                    raise self.error("unterminated phrase")
                phrase = self.source[self.pos: end]
                self.pos = end + 1
                if not phrase.strip():
                    raise self.error("empty phrase")
                keywords.append(Keyword(phrase.strip(), modifier, phrase=True))
                continue
            start = self.pos
            while (not self.eof()
                   and not self.source[self.pos].isspace()
                   and self.source[self.pos] not in '),"'):
                self.pos += 1
            word = self.source[start: self.pos]
            if not word:
                raise self.error("expected a keyword")
            keywords.append(Keyword(word, modifier))
        if not keywords:
            raise self.error("about() requires at least one keyword")
        return keywords


def parse_nexi(source: str) -> NexiQuery:
    """Parse a NEXI query string into a :class:`NexiQuery`."""
    if not source or not source.strip():
        raise NexiSyntaxError("empty query")
    return _Parser(source.strip()).parse_query()
