"""Abstract syntax for NEXI retrieval queries.

NEXI (Narrowed Extended XPath I) narrows XPath to child/descendant
navigation and extends it with the ``about(path, keywords)`` filter
(paper §1).  The AST mirrors that shape:

* a query is a sequence of :class:`QueryStep`; each step contributes
  path steps (``//sec``) and may carry a predicate;
* a predicate is a boolean combination (``and`` / ``or``) of
  :class:`AboutClause` filters;
* an about clause has a relative path (``.`` or ``.//bdy``) and a list
  of :class:`Keyword` tokens with the NEXI modifiers: ``+`` (emphasis),
  ``-`` (avoid), and quoted phrases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..summary.matcher import PathPattern, PathStep

__all__ = [
    "Keyword",
    "AboutClause",
    "BooleanPredicate",
    "Predicate",
    "QueryStep",
    "NexiQuery",
]


@dataclass(frozen=True)
class Keyword:
    """One search token from an about() keyword list."""

    text: str
    modifier: str = ""  # '', '+', or '-'
    phrase: bool = False  # True when the token came from a quoted phrase

    @property
    def words(self) -> tuple[str, ...]:
        """Individual words (phrases contribute several)."""
        return tuple(self.text.split())

    def __str__(self) -> str:
        body = f'"{self.text}"' if self.phrase else self.text
        return f"{self.modifier}{body}"


@dataclass(frozen=True)
class AboutClause:
    """``about(relative_path, keywords)``."""

    relative: PathPattern  # empty steps tuple means '.'
    keywords: tuple[Keyword, ...]

    @property
    def is_self(self) -> bool:
        return not self.relative.steps

    def __str__(self) -> str:
        rel = "." + str(self.relative) if self.relative.steps else "."
        kws = " ".join(str(k) for k in self.keywords)
        return f"about({rel}, {kws})"


@dataclass(frozen=True)
class ComparisonClause:
    """A NEXI value comparison, e.g. ``.//yr > 2000`` or ``./lang = "en"``.

    ``value`` is a float for numeric comparisons and a lowercase string
    for string comparisons (NEXI restricts strings to equality tests).
    """

    relative: PathPattern
    op: str  # one of =, !=, <, <=, >, >=
    value: float | str

    OPS = ("<=", ">=", "!=", "=", "<", ">")

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, float)

    def matches(self, token: str) -> bool:
        """Does one element token satisfy the comparison?"""
        if self.is_numeric:
            try:
                number = float(token)
            except ValueError:
                return False
            if self.op == "=":
                return number == self.value
            if self.op == "!=":
                return number != self.value
            if self.op == "<":
                return number < self.value
            if self.op == "<=":
                return number <= self.value
            if self.op == ">":
                return number > self.value
            return number >= self.value
        if self.op == "=":
            return token == self.value
        if self.op == "!=":
            return token != self.value
        return False  # ordered comparison of strings is not NEXI

    def __str__(self) -> str:
        rel = "." + str(self.relative) if self.relative.steps else "."
        value = (f"{self.value:g}" if self.is_numeric else f'"{self.value}"')
        return f"{rel} {self.op} {value}"


@dataclass(frozen=True)
class BooleanPredicate:
    """``and`` / ``or`` combination of sub-predicates."""

    op: str  # 'and' or 'or'
    operands: tuple["Predicate", ...]

    def __str__(self) -> str:
        return f" {self.op} ".join(
            f"({operand})" if isinstance(operand, BooleanPredicate) else str(operand)
            for operand in self.operands)


Predicate = AboutClause | ComparisonClause | BooleanPredicate


def iter_about_clauses(predicate: Predicate) -> Iterator[AboutClause]:
    """All about clauses in a predicate, left to right."""
    for atom in iter_atoms(predicate):
        if isinstance(atom, AboutClause):
            yield atom


def iter_atoms(predicate: Predicate) -> Iterator[AboutClause | ComparisonClause]:
    """All atomic clauses (about and comparison), left to right."""
    if isinstance(predicate, (AboutClause, ComparisonClause)):
        yield predicate
        return
    assert isinstance(predicate, BooleanPredicate)
    for operand in predicate.operands:
        yield from iter_atoms(operand)


@dataclass(frozen=True)
class QueryStep:
    """Path steps plus an optional predicate, e.g. ``//article[...]``."""

    pattern_steps: tuple[PathStep, ...]
    predicate: Predicate | None = None

    def __str__(self) -> str:
        path = str(PathPattern(self.pattern_steps))
        if self.predicate is None:
            return path
        return f"{path}[{self.predicate}]"


@dataclass(frozen=True)
class NexiQuery:
    """A full NEXI query: concatenated steps with predicates."""

    steps: tuple[QueryStep, ...]
    source: str = field(default="", compare=False)

    def full_pattern(self) -> PathPattern:
        """The structural path of the query's target elements."""
        steps: list[PathStep] = []
        for step in self.steps:
            steps.extend(step.pattern_steps)
        return PathPattern(tuple(steps))

    def pattern_up_to(self, step_index: int) -> PathPattern:
        """The path from the root through ``steps[:step_index + 1]``."""
        steps: list[PathStep] = []
        for step in self.steps[: step_index + 1]:
            steps.extend(step.pattern_steps)
        return PathPattern(tuple(steps))

    def about_clauses(self) -> Iterator[tuple[int, AboutClause]]:
        """Yield (step index, clause) for every about clause in the query."""
        for index, step in enumerate(self.steps):
            if step.predicate is not None:
                for clause in iter_about_clauses(step.predicate):
                    yield index, clause

    def comparison_clauses(self) -> Iterator[tuple[int, "ComparisonClause"]]:
        """Yield (step index, clause) for every value comparison."""
        for index, step in enumerate(self.steps):
            if step.predicate is not None:
                for atom in iter_atoms(step.predicate):
                    if isinstance(atom, ComparisonClause):
                        yield index, atom

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)
