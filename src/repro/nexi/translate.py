"""The translation phase: NEXI query → sid sets and term sets.

Paper §3.1: "each path p in the query from the root to an about()
function is translated to a set of sids and a set of terms.  [...] the
set of sids consists of all the summary nodes whose extent has a
non-empty intersection with E_p, whereas the set of terms consists of
all the terms that appear in the about() function at the end of p."

For the query of the paper's Example 1.1 over the alias incoming
summary, ``//article//sec[about(., query evaluation)]`` yields the sec
sids and terms {query, evaluation}, while ``//article[about(., XML)]``
yields the article sid and {xml} — one :class:`TranslatedClause` each.

Keyword handling: ``+term`` is emphasized (double weight), ``-term`` is
recorded but *excluded* from retrieval scoring (keeping the aggregation
monotone for TA; this is the usual TopX-style treatment), and phrases
contribute their individual words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..corpus.tokenizer import Tokenizer
from ..summary.base import PartitionSummary
from ..summary.matcher import PathPattern, sids_for_pattern
from .ast import ComparisonClause, NexiQuery

__all__ = ["TranslatedClause", "TranslatedComparison", "TranslatedQuery",
           "translate_query"]


@dataclass(frozen=True)
class TranslatedClause:
    """One retrieval task: a sid set, weighted terms, and its role."""

    step_index: int
    pattern: PathPattern
    sids: frozenset[int]
    term_weights: tuple[tuple[str, float], ...]  # (term, weight), weight > 0
    excluded_terms: tuple[str, ...]
    is_target: bool  # attached (via '.') to the query's last step
    #: Quoted phrases, as tuples of normalized words (multi-word only).
    phrases: tuple[tuple[str, ...], ...] = ()

    @property
    def terms(self) -> tuple[str, ...]:
        return tuple(term for term, _ in self.term_weights)

    def weight_of(self, term: str) -> float:
        for candidate, weight in self.term_weights:
            if candidate == term:
                return weight
        return 0.0


@dataclass(frozen=True)
class TranslatedComparison:
    """A translated value-comparison filter."""

    step_index: int
    pattern: PathPattern
    sids: frozenset[int]
    clause: ComparisonClause
    #: Sids of the query step the comparison is attached to — the join
    #: point between the compared element and the query's target.
    step_sids: frozenset[int] = frozenset()


@dataclass(frozen=True)
class TranslatedQuery:
    """The full translation of one NEXI query."""

    query: NexiQuery
    target_pattern: PathPattern
    target_sids: frozenset[int]
    clauses: tuple[TranslatedClause, ...] = field(default=())
    comparisons: tuple[TranslatedComparison, ...] = field(default=())

    @property
    def target_clauses(self) -> tuple[TranslatedClause, ...]:
        return tuple(clause for clause in self.clauses if clause.is_target)

    @property
    def support_clauses(self) -> tuple[TranslatedClause, ...]:
        return tuple(clause for clause in self.clauses if not clause.is_target)

    # Flattened view (paper §2.2) ----------------------------------------
    def flat_sids(self) -> frozenset[int]:
        """Union of all clause sids — the paper's single-task sid list."""
        result: set[int] = set()
        for clause in self.clauses:
            result.update(clause.sids)
        return frozenset(result)

    def flat_term_weights(self) -> dict[str, float]:
        """Merged term weights across clauses (max weight per term)."""
        weights: dict[str, float] = {}
        for clause in self.clauses:
            for term, weight in clause.term_weights:
                weights[term] = max(weights.get(term, 0.0), weight)
        return weights

    # Table 1-style statistics -------------------------------------------
    @property
    def num_sids(self) -> int:
        """Total sids across clauses (paper Table 1's '# sids')."""
        return sum(len(clause.sids) for clause in self.clauses)

    @property
    def num_terms(self) -> int:
        """Distinct terms across clauses (paper Table 1's '# terms')."""
        seen: set[str] = set()
        for clause in self.clauses:
            seen.update(clause.terms)
            seen.update(clause.excluded_terms)
        return len(seen)


_EMPHASIS_WEIGHT = 2.0


def translate_query(query: NexiQuery, summary: PartitionSummary,
                    tokenizer: Tokenizer | None = None, *,
                    vague: bool = True) -> TranslatedQuery:
    """Translate *query* against *summary* into retrieval tasks.

    ``vague`` selects the paper's vague interpretation: query labels are
    canonicalized through the summary's alias mapping during matching.
    """
    tokenizer = tokenizer if tokenizer is not None else Tokenizer()
    last_step = len(query.steps) - 1
    clauses: list[TranslatedClause] = []

    for step_index, about in query.about_clauses():
        pattern = query.pattern_up_to(step_index).concatenated(about.relative)
        sids = sids_for_pattern(summary, pattern, vague=vague)

        weights: dict[str, float] = {}
        excluded: list[str] = []
        phrases: list[tuple[str, ...]] = []
        for keyword in about.keywords:
            normalized_words = []
            for word in keyword.words:
                term = tokenizer.normalize_term(word)
                if term is None:
                    continue
                normalized_words.append(term)
                if keyword.modifier == "-":
                    excluded.append(term)
                    continue
                weight = _EMPHASIS_WEIGHT if keyword.modifier == "+" else 1.0
                weights[term] = max(weights.get(term, 0.0), weight)
            if keyword.phrase and keyword.modifier != "-" and len(normalized_words) > 1:
                phrases.append(tuple(normalized_words))

        is_target = step_index == last_step and about.is_self
        clauses.append(TranslatedClause(
            step_index=step_index,
            pattern=pattern,
            sids=frozenset(sids),
            term_weights=tuple(sorted(weights.items())),
            excluded_terms=tuple(excluded),
            is_target=is_target,
            phrases=tuple(phrases),
        ))

    comparisons = []
    for step_index, comparison in query.comparison_clauses():
        step_pattern = query.pattern_up_to(step_index)
        pattern = step_pattern.concatenated(comparison.relative)
        comparisons.append(TranslatedComparison(
            step_index=step_index,
            pattern=pattern,
            sids=frozenset(sids_for_pattern(summary, pattern, vague=vague)),
            clause=comparison,
            step_sids=frozenset(sids_for_pattern(summary, step_pattern,
                                                 vague=vague)),
        ))

    target_pattern = query.full_pattern()
    target_sids = sids_for_pattern(summary, target_pattern, vague=vague)
    return TranslatedQuery(
        query=query,
        target_pattern=target_pattern,
        target_sids=frozenset(target_sids),
        clauses=tuple(clauses),
        comparisons=tuple(comparisons),
    )
