"""NEXI query language: AST, parser, and summary-based translation."""

from .ast import (
    AboutClause,
    BooleanPredicate,
    ComparisonClause,
    Keyword,
    NexiQuery,
    QueryStep,
    iter_about_clauses,
    iter_atoms,
)
from .parser import parse_nexi
from .translate import (
    TranslatedClause,
    TranslatedComparison,
    TranslatedQuery,
    translate_query,
)

__all__ = [
    "AboutClause",
    "BooleanPredicate",
    "ComparisonClause",
    "Keyword",
    "NexiQuery",
    "QueryStep",
    "iter_about_clauses",
    "iter_atoms",
    "parse_nexi",
    "TranslatedClause",
    "TranslatedComparison",
    "TranslatedQuery",
    "translate_query",
]
