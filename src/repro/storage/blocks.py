"""Block sequences: the compressed, skip-indexed segment representation.

A :class:`BlockSequence` stores a sorted run of entries as a list of
delta+varint compressed blocks (:class:`~repro.storage.serialization.
BlockCodec`) plus a *resident skip directory* — the per-block
:class:`~repro.storage.serialization.BlockHeader` list.  Readers consult
headers for free (they live in memory, like the paper's BerkeleyDB
internal pages), pay ``block_read`` + ``block_decode`` only for blocks
they actually open, and record a ``block_skip`` for every block the
directory let them leap over.

Decoded blocks are memoized per sequence; whether a re-visit is charged
is decided by the shared :class:`~repro.storage.pager.PageCache`, so a
block evicted from the simulated buffer pool costs a fresh block read
even though Python still holds the decoded entries.
"""

from __future__ import annotations

import os
import struct

from ..errors import CodecError, StorageError
from .cost import CostModel, GLOBAL_COST_MODEL
from .pager import PageCache
from .serialization import (
    BlockCodec,
    BlockColumns,
    BlockHeader,
    _read_uvarint,
    _write_uvarint,
)

__all__ = ["BlockSequence", "DEFAULT_BLOCK_SIZE"]

#: Entries per block; ~128 balances decode amortization against skip
#: granularity, the usual choice in block-compressed inverted files.
DEFAULT_BLOCK_SIZE = 128

_MAGIC = b"TRXB\x01"
_FLOAT = struct.Struct(">d")

#: Block page ids live far above any B+-tree node id so that sharing a
#: PageCache between trees and block sequences never aliases.
_BLOCK_PAGE_BASE = 1 << 40
_next_block_page = _BLOCK_PAGE_BASE


def _allocate_block_pages(count: int) -> int:
    global _next_block_page
    base = _next_block_page
    _next_block_page += count
    return base


def _header_size(header: BlockHeader) -> int:
    out = bytearray()
    for component in header.first_key:
        _write_uvarint(out, component)
    for component in header.last_key:
        _write_uvarint(out, component)
    _write_uvarint(out, header.count)
    _write_uvarint(out, header.byte_len)
    return len(out) + _FLOAT.size


class BlockSequence:
    """A sorted entry run stored as compressed blocks + skip directory."""

    def __init__(self, codec: BlockCodec,
                 headers: list[BlockHeader] | None = None,
                 payloads: list[bytes] | None = None,
                 cost_model: CostModel | None = None,
                 cache: PageCache | None = None) -> None:
        self.codec = codec
        self.headers: list[BlockHeader] = headers or []
        self._payloads: list[bytes] = payloads or []
        if len(self.headers) != len(self._payloads):
            raise StorageError("block headers and payloads out of step")
        self.cost_model = (cost_model if cost_model is not None
                           else GLOBAL_COST_MODEL)
        self._cache = (cache if cache is not None
                       else PageCache(cost_model=self.cost_model))
        self._decoded: dict[int, list[tuple]] = {}
        self._columns: dict[int, BlockColumns] = {}
        self._page_base = _allocate_block_pages(max(len(self.headers), 1))
        self._header_bytes = sum(_header_size(h) for h in self.headers)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, entries: list, codec: BlockCodec,
              block_size: int = DEFAULT_BLOCK_SIZE,
              cost_model: CostModel | None = None,
              cache: PageCache | None = None) -> "BlockSequence":
        """Pack sorted *entries* into blocks of ``block_size`` entries."""
        if block_size < 1:
            raise StorageError("block size must be >= 1")
        entries = list(entries)
        headers: list[BlockHeader] = []
        payloads: list[bytes] = []
        for start in range(0, len(entries), block_size):
            header, payload = codec.encode_block(entries[start:start + block_size])
            headers.append(header)
            payloads.append(payload)
        return cls(codec, headers, payloads, cost_model=cost_model, cache=cache)

    @classmethod
    def build_grouped(cls, groups: list, codec: BlockCodec,
                      cost_model: CostModel | None = None,
                      cache: PageCache | None = None) -> "BlockSequence":
        """Pack each run in *groups* as one block (caller-chosen bounds).

        Used where block boundaries must mirror an existing physical
        unit — e.g. one block per posting-list fragment.
        """
        headers: list[BlockHeader] = []
        payloads: list[bytes] = []
        for group in groups:
            header, payload = codec.encode_block(list(group))
            headers.append(header)
            payloads.append(payload)
        return cls(codec, headers, payloads, cost_model=cost_model, cache=cache)

    # ------------------------------------------------------------------
    @property
    def block_count(self) -> int:
        return len(self.headers)

    @property
    def entry_count(self) -> int:
        return sum(header.count for header in self.headers)

    @property
    def size_bytes(self) -> int:
        """Compressed footprint: payload bytes + resident skip directory."""
        return sum(header.byte_len for header in self.headers) + self._header_bytes

    def use_cache(self, cache: PageCache) -> None:
        """Route block residency through a (possibly shared) cache."""
        self._cache = cache

    def invalidate(self) -> None:
        """Drop this sequence's blocks from the simulated buffer pool."""
        for index in range(len(self.headers)):
            self._cache.invalidate(self._page_base + index)

    # ------------------------------------------------------------------
    # Charged access paths
    # ------------------------------------------------------------------
    def read_block_columns(self, index: int) -> BlockColumns:
        """Open block *index* as parallel columns.

        Charging is identical to :meth:`read_block` — one page-cache
        touch (``BLOCK_READ`` on a miss, ``PAGE_HIT`` on a hit) plus one
        ``BLOCK_DECODE`` + N ``ENTRY_DECODE`` per miss — because both
        entry points share the same cache page and decode meter; which
        *view* of the block the caller asked for never changes cost.
        """
        header = self.headers[index]
        hit = self._cache.touch_block(self._page_base + index)
        if not hit:
            self.cost_model.block_decode(header.count)
        columns = self._columns.get(index)
        if columns is None:
            columns = self.codec.decode_columns(self._payloads[index],
                                                header.count)
            self._columns[index] = columns
        return columns

    def read_block(self, index: int) -> list[tuple]:
        """Open block *index* as row tuples: shim over the columnar read."""
        entries = self._decoded.get(index)
        if entries is not None:
            # Still touch the (possibly shared) buffer pool: residency
            # is decided by the cache, not by Python-side memoization.
            hit = self._cache.touch_block(self._page_base + index)
            if not hit:
                self.cost_model.block_decode(self.headers[index].count)
            return entries
        entries = self.read_block_columns(index).rows()
        self._decoded[index] = entries
        return entries

    def find_first_block_ge(self, key: tuple, start: int = 0) -> int:
        """Smallest block index ≥ *start* whose ``last_key`` ≥ *key*.

        Returns ``block_count`` when every block ends before *key*.
        The bisection over resident headers is charged as comparisons;
        blocks leapt over are recorded as skips.
        """
        lo, hi = start, len(self.headers)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if self.headers[mid].last_key < key:
                lo = mid + 1
            else:
                hi = mid
        if steps:
            self.cost_model.compare(steps)
        if lo > start:
            self.cost_model.block_skip(lo - start)
        return lo

    # ------------------------------------------------------------------
    # Uncharged access (construction, tests, persistence)
    # ------------------------------------------------------------------
    def entries(self) -> list[tuple]:
        """Decode every block without charging (maintenance path)."""
        result: list[tuple] = []
        for index, header in enumerate(self.headers):
            entries = self._decoded.get(index)
            if entries is None:
                entries = self.codec.decode_block(self._payloads[index],
                                                  header.count)
                self._decoded[index] = entries
            result.extend(entries)
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the canonical ``TRXB`` wire format.

        The encoding is deterministic: two sequences built from the same
        entries with the same codec and block size serialize identically,
        which is what lets parallel build workers ship finished segments
        back to the parent (and the golden tests diff them byte-wise).
        """
        out = bytearray(_MAGIC)
        _write_uvarint(out, self.codec.key_width)
        _write_uvarint(out, len(self.headers))
        for header, payload in zip(self.headers, self._payloads):
            for component in header.first_key:
                _write_uvarint(out, component)
            for component in header.last_key:
                _write_uvarint(out, component)
            out.extend(_FLOAT.pack(header.max_score))
            _write_uvarint(out, header.count)
            _write_uvarint(out, header.byte_len)
            out.extend(payload)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, codec: BlockCodec,
                   cost_model: CostModel | None = None,
                   cache: PageCache | None = None,
                   source: str = "<bytes>") -> "BlockSequence":
        """Reconstruct a sequence from :meth:`to_bytes` output."""
        if not data.startswith(_MAGIC):
            raise StorageError(f"{source}: not a block-sequence image")
        offset = len(_MAGIC)
        try:
            key_width, offset = _read_uvarint(data, offset)
            if key_width != codec.key_width:
                raise StorageError(
                    f"{source}: key width {key_width} != codec {codec.key_width}")
            block_count, offset = _read_uvarint(data, offset)
            headers: list[BlockHeader] = []
            payloads: list[bytes] = []
            for _ in range(block_count):
                first = []
                for _ in range(key_width):
                    component, offset = _read_uvarint(data, offset)
                    first.append(component)
                last = []
                for _ in range(key_width):
                    component, offset = _read_uvarint(data, offset)
                    last.append(component)
                end = offset + _FLOAT.size
                if end > len(data):
                    raise CodecError("truncated block header")
                max_score = _FLOAT.unpack_from(data, offset)[0]
                offset = end
                count, offset = _read_uvarint(data, offset)
                byte_len, offset = _read_uvarint(data, offset)
                end = offset + byte_len
                if end > len(data):
                    raise CodecError("truncated block payload")
                headers.append(BlockHeader(tuple(first), tuple(last),
                                           max_score, count, byte_len))
                payloads.append(data[offset:end])
                offset = end
        except CodecError as err:
            raise StorageError(f"{source}: corrupt block image: {err}") from err
        if offset != len(data):
            raise StorageError(f"{source}: trailing bytes in block image")
        return cls(codec, headers, payloads, cost_model=cost_model, cache=cache)

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def load(cls, path: str | os.PathLike, codec: BlockCodec,
             cost_model: CostModel | None = None,
             cache: PageCache | None = None) -> "BlockSequence":
        with open(path, "rb") as fh:
            data = fh.read()
        return cls.from_bytes(data, codec, cost_model=cost_model,
                              cache=cache, source=str(path))
