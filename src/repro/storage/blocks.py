"""Block sequences: the compressed, skip-indexed segment representation.

A :class:`BlockSequence` stores a sorted run of entries as a list of
delta+varint compressed blocks (:class:`~repro.storage.serialization.
BlockCodec`) plus a *resident skip directory* — the per-block
:class:`~repro.storage.serialization.BlockHeader` list.  Readers consult
headers for free (they live in memory, like the paper's BerkeleyDB
internal pages), pay ``block_read`` + ``block_decode`` only for blocks
they actually open, and record a ``block_skip`` for every block the
directory let them leap over.

Decoded blocks are memoized per sequence; whether a re-visit is charged
is decided by the shared :class:`~repro.storage.pager.PageCache`, so a
block evicted from the simulated buffer pool costs a fresh block read
even though Python still holds the decoded entries.

Two storage-variant axes thread through here (see ``repro.backend``):

* **compression** — block payloads may be stored zlib-deflated.  The
  skip directory, block boundaries and decoded entries are identical
  either way (headers always describe the *raw* payload), so query
  results cannot depend on the codec; what changes is ``size_bytes``
  and an extra ``BLOCK_DECOMPRESS`` charge per cold block open;
* **backend charge scaling** — :attr:`read_factor` scales the
  ``BLOCK_READ`` charge per cold open for the backend a sequence lives
  in (sqlite row fetch vs pager read vs mmap fault).
"""

from __future__ import annotations

import os
import struct

from ..backend.atomic import atomic_write_bytes
from ..backend.compression import COMPRESSIONS, check_compression
from ..backend.compression import compress as _compress
from ..backend.compression import decompress as _decompress
from ..errors import CodecError, StorageCorruptionError, StorageError
from .cost import CostModel, GLOBAL_COST_MODEL
from .pager import PageCache
from .serialization import (
    BlockCodec,
    BlockColumns,
    BlockHeader,
    _read_uvarint,
    _write_uvarint,
)

__all__ = ["BlockSequence", "DEFAULT_BLOCK_SIZE"]

#: Entries per block; ~128 balances decode amortization against skip
#: granularity, the usual choice in block-compressed inverted files.
DEFAULT_BLOCK_SIZE = 128

#: Flat (uncompressed) images keep the historical magic so pre-backend
#: ``.blk`` files load unchanged and flat saves stay byte-identical.
_MAGIC = b"TRXB\x01"
#: Compressed images are self-describing: the codec tag rides in the
#: image, which is what lets replica-shipped segment images carry it.
_MAGIC_COMPRESSED = b"TRXC\x01"
_FLOAT = struct.Struct(">d")

#: Block page ids live far above any B+-tree node id so that sharing a
#: PageCache between trees and block sequences never aliases.
_BLOCK_PAGE_BASE = 1 << 40
_next_block_page = _BLOCK_PAGE_BASE


def _allocate_block_pages(count: int) -> int:
    global _next_block_page
    base = _next_block_page
    _next_block_page += count
    return base


def _header_size(header: BlockHeader) -> int:
    out = bytearray()
    for component in header.first_key:
        _write_uvarint(out, component)
    for component in header.last_key:
        _write_uvarint(out, component)
    _write_uvarint(out, header.count)
    _write_uvarint(out, header.byte_len)
    return len(out) + _FLOAT.size


class BlockSequence:
    """A sorted entry run stored as compressed blocks + skip directory."""

    def __init__(self, codec: BlockCodec,
                 headers: list[BlockHeader] | None = None,
                 payloads: list[bytes] | None = None,
                 cost_model: CostModel | None = None,
                 cache: PageCache | None = None,
                 compression: str = "none") -> None:
        self.codec = codec
        self.headers: list[BlockHeader] = headers or []
        #: Stored payload bytes — compressed when :attr:`compression`
        #: says so; ``headers[i].byte_len`` always describes the raw form.
        self._payloads: list[bytes] = payloads or []
        if len(self.headers) != len(self._payloads):
            raise StorageError("block headers and payloads out of step")
        self.compression = check_compression(compression)
        self.cost_model = (cost_model if cost_model is not None
                           else GLOBAL_COST_MODEL)
        self._cache = (cache if cache is not None
                       else PageCache(cost_model=self.cost_model))
        #: ``BLOCK_READ`` multiplier of the backend this sequence lives
        #: in; the catalog stamps it when it adopts a sequence.
        self.read_factor = 1.0
        #: Where the bytes came from and which segment they belong to —
        #: corruption errors carry both.
        self.source = "<memory>"
        self.sequence_id: int | None = None
        self._decoded: dict[int, list[tuple]] = {}
        self._columns: dict[int, BlockColumns] = {}
        self._raw: dict[int, bytes] = {}
        self._page_base = _allocate_block_pages(max(len(self.headers), 1))
        self._header_bytes = sum(_header_size(h) for h in self.headers)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, entries: list, codec: BlockCodec,
              block_size: int = DEFAULT_BLOCK_SIZE,
              cost_model: CostModel | None = None,
              cache: PageCache | None = None,
              compression: str = "none") -> "BlockSequence":
        """Pack sorted *entries* into blocks of ``block_size`` entries."""
        if block_size < 1:
            raise StorageError("block size must be >= 1")
        check_compression(compression)
        entries = list(entries)
        headers: list[BlockHeader] = []
        payloads: list[bytes] = []
        for start in range(0, len(entries), block_size):
            header, payload = codec.encode_block(entries[start:start + block_size])
            headers.append(header)
            payloads.append(_compress(compression, payload))
        return cls(codec, headers, payloads, cost_model=cost_model,
                   cache=cache, compression=compression)

    @classmethod
    def build_grouped(cls, groups: list, codec: BlockCodec,
                      cost_model: CostModel | None = None,
                      cache: PageCache | None = None,
                      compression: str = "none") -> "BlockSequence":
        """Pack each run in *groups* as one block (caller-chosen bounds).

        Used where block boundaries must mirror an existing physical
        unit — e.g. one block per posting-list fragment.
        """
        check_compression(compression)
        headers: list[BlockHeader] = []
        payloads: list[bytes] = []
        for group in groups:
            header, payload = codec.encode_block(list(group))
            headers.append(header)
            payloads.append(_compress(compression, payload))
        return cls(codec, headers, payloads, cost_model=cost_model,
                   cache=cache, compression=compression)

    def with_compression(self, compression: str) -> "BlockSequence":
        """This run re-encoded under *compression* (``self`` if same).

        Re-encoding is deterministic (pinned zlib level, identical
        headers), so recompressing a worker-shipped image on install
        yields the same bytes on every replica.
        """
        check_compression(compression)
        if compression == self.compression:
            return self
        payloads = [_compress(compression, self._raw_payload(index))
                    for index in range(len(self.headers))]
        clone = BlockSequence(self.codec, list(self.headers), payloads,
                              cost_model=self.cost_model, cache=self._cache,
                              compression=compression)
        clone.read_factor = self.read_factor
        clone.source = self.source
        clone.sequence_id = self.sequence_id
        return clone

    # ------------------------------------------------------------------
    @property
    def block_count(self) -> int:
        return len(self.headers)

    @property
    def entry_count(self) -> int:
        return sum(header.count for header in self.headers)

    @property
    def size_bytes(self) -> int:
        """Stored footprint: payload bytes as stored + skip directory."""
        return sum(len(payload) for payload in self._payloads) + self._header_bytes

    @property
    def flat_size_bytes(self) -> int:
        """The footprint this run would have uncompressed."""
        return sum(header.byte_len for header in self.headers) + self._header_bytes

    def compressed_size_bytes(self, compression: str) -> int:
        """The footprint this run would have under *compression*.

        Measures without mutating — the advisor's what-if probe.
        """
        check_compression(compression)
        if compression == self.compression:
            return self.size_bytes
        if compression == "none":
            return self.flat_size_bytes
        return sum(len(_compress(compression, self._raw_payload(index)))
                   for index in range(len(self.headers))) + self._header_bytes

    def use_cache(self, cache: PageCache) -> None:
        """Route block residency through a (possibly shared) cache."""
        self._cache = cache

    def invalidate(self) -> None:
        """Drop this sequence's blocks from the simulated buffer pool."""
        for index in range(len(self.headers)):
            self._cache.invalidate(self._page_base + index)

    # ------------------------------------------------------------------
    # Charged access paths
    # ------------------------------------------------------------------
    def _open_block(self, index: int) -> None:
        """Charge one block open: the *only* place open charges accrue.

        One page-cache touch (``BLOCK_READ`` scaled by the backend's
        :attr:`read_factor` on a miss, ``PAGE_HIT`` on a hit) plus, per
        miss, one ``BLOCK_DECOMPRESS`` (compressed sequences only) and
        one ``BLOCK_DECODE`` + N ``ENTRY_DECODE``.  Both the row and the
        columnar view call through here with the same page id, so which
        view the caller asked for — or how many sibling views are
        resident — never changes cost, and eviction re-charges exactly
        once however many views Python still holds.
        """
        header = self.headers[index]
        hit = self._cache.touch_block(self._page_base + index,
                                      factor=self.read_factor)
        if not hit:
            if self.compression != "none":
                self.cost_model.block_decompress()
            self.cost_model.block_decode(header.count)

    def _raw_payload(self, index: int) -> bytes:
        """Block *index*'s raw (decompressed) payload bytes, memoized."""
        if self.compression == "none":
            return self._payloads[index]
        payload = self._raw.get(index)
        if payload is None:
            payload = _decompress(self.compression, self._payloads[index],
                                  self.headers[index].byte_len,
                                  source=self.source,
                                  sequence_id=self.sequence_id)
            self._raw[index] = payload
        return payload

    def read_block_columns(self, index: int) -> BlockColumns:
        """Open block *index* as parallel columns (see :meth:`_open_block`
        for the charging contract shared with :meth:`read_block`)."""
        self._open_block(index)
        columns = self._columns.get(index)
        if columns is None:
            columns = self.codec.decode_columns(self._raw_payload(index),
                                                self.headers[index].count)
            self._columns[index] = columns
        return columns

    def read_block(self, index: int) -> list[tuple]:
        """Open block *index* as row tuples: shim over the columnar read."""
        entries = self._decoded.get(index)
        if entries is not None:
            # Still touch the (possibly shared) buffer pool: residency
            # is decided by the cache, not by Python-side memoization.
            self._open_block(index)
            return entries
        entries = self.read_block_columns(index).rows()
        self._decoded[index] = entries
        return entries

    def find_first_block_ge(self, key: tuple, start: int = 0) -> int:
        """Smallest block index ≥ *start* whose ``last_key`` ≥ *key*.

        Returns ``block_count`` when every block ends before *key*.
        The bisection over resident headers is charged as comparisons;
        blocks leapt over are recorded as skips.
        """
        lo, hi = start, len(self.headers)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if self.headers[mid].last_key < key:
                lo = mid + 1
            else:
                hi = mid
        if steps:
            self.cost_model.compare(steps)
        if lo > start:
            self.cost_model.block_skip(lo - start)
        return lo

    # ------------------------------------------------------------------
    # Uncharged access (construction, tests, persistence)
    # ------------------------------------------------------------------
    def entries(self) -> list[tuple]:
        """Decode every block without charging (maintenance path)."""
        result: list[tuple] = []
        for index, header in enumerate(self.headers):
            entries = self._decoded.get(index)
            if entries is None:
                entries = self.codec.decode_block(self._raw_payload(index),
                                                  header.count)
                self._decoded[index] = entries
            result.extend(entries)
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the canonical wire format.

        Flat sequences use the historical ``TRXB`` layout (byte-for-byte
        what pre-compression catalogs wrote); compressed sequences use
        ``TRXC``, which carries the codec tag plus per-block raw and
        stored lengths.  Either way the encoding is deterministic: two
        sequences built from the same entries with the same codec, block
        size and compression serialize identically, which is what lets
        parallel build workers and replica leaders ship finished
        segments (and the golden tests diff them byte-wise).
        """
        if self.compression == "none":
            out = bytearray(_MAGIC)
            _write_uvarint(out, self.codec.key_width)
            _write_uvarint(out, len(self.headers))
            for header, payload in zip(self.headers, self._payloads):
                for component in header.first_key:
                    _write_uvarint(out, component)
                for component in header.last_key:
                    _write_uvarint(out, component)
                out.extend(_FLOAT.pack(header.max_score))
                _write_uvarint(out, header.count)
                _write_uvarint(out, header.byte_len)
                out.extend(payload)
            return bytes(out)
        out = bytearray(_MAGIC_COMPRESSED)
        tag = self.compression.encode("ascii")
        _write_uvarint(out, len(tag))
        out.extend(tag)
        _write_uvarint(out, self.codec.key_width)
        _write_uvarint(out, len(self.headers))
        for header, payload in zip(self.headers, self._payloads):
            for component in header.first_key:
                _write_uvarint(out, component)
            for component in header.last_key:
                _write_uvarint(out, component)
            out.extend(_FLOAT.pack(header.max_score))
            _write_uvarint(out, header.count)
            _write_uvarint(out, header.byte_len)
            _write_uvarint(out, len(payload))
            out.extend(payload)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, codec: BlockCodec,
                   cost_model: CostModel | None = None,
                   cache: PageCache | None = None,
                   source: str = "<bytes>",
                   sequence_id: int | None = None) -> "BlockSequence":
        """Reconstruct a sequence from :meth:`to_bytes` output.

        The image is self-describing: a ``TRXC`` image keeps the
        compression it was written with, so shipped segment images carry
        their codec tag across the delta log.  Torn or malformed bytes
        raise :class:`~repro.errors.StorageCorruptionError` with the
        *source* path and *sequence_id*.
        """
        compressed = data.startswith(_MAGIC_COMPRESSED)
        if not compressed and not data.startswith(_MAGIC):
            raise StorageCorruptionError(
                source, "not a block-sequence image (bad magic)",
                sequence_id=sequence_id)
        compression = "none"
        offset = len(_MAGIC_COMPRESSED) if compressed else len(_MAGIC)
        try:
            if compressed:
                tag_len, offset = _read_uvarint(data, offset)
                end = offset + tag_len
                if end > len(data):
                    raise CodecError("truncated compression tag")
                compression = data[offset:end].decode("ascii", "replace")
                if compression not in COMPRESSIONS:
                    raise CodecError(
                        f"unknown compression tag {compression!r}")
                offset = end
            key_width, offset = _read_uvarint(data, offset)
            if key_width != codec.key_width:
                raise StorageError(
                    f"{source}: key width {key_width} != codec {codec.key_width}")
            block_count, offset = _read_uvarint(data, offset)
            headers: list[BlockHeader] = []
            payloads: list[bytes] = []
            for _ in range(block_count):
                first = []
                for _ in range(key_width):
                    component, offset = _read_uvarint(data, offset)
                    first.append(component)
                last = []
                for _ in range(key_width):
                    component, offset = _read_uvarint(data, offset)
                    last.append(component)
                end = offset + _FLOAT.size
                if end > len(data):
                    raise CodecError("truncated block header")
                max_score = _FLOAT.unpack_from(data, offset)[0]
                offset = end
                count, offset = _read_uvarint(data, offset)
                byte_len, offset = _read_uvarint(data, offset)
                stored_len = byte_len
                if compression != "none":
                    stored_len, offset = _read_uvarint(data, offset)
                end = offset + stored_len
                if end > len(data):
                    raise CodecError("truncated block payload")
                headers.append(BlockHeader(tuple(first), tuple(last),
                                           max_score, count, byte_len))
                payloads.append(data[offset:end])
                offset = end
        except CodecError as err:
            raise StorageCorruptionError(
                source, f"corrupt block image: {err}",
                sequence_id=sequence_id) from err
        if offset != len(data):
            raise StorageCorruptionError(
                source, "trailing bytes in block image",
                sequence_id=sequence_id)
        sequence = cls(codec, headers, payloads, cost_model=cost_model,
                       cache=cache, compression=compression)
        sequence.source = source
        sequence.sequence_id = sequence_id
        return sequence

    def save(self, path: str | os.PathLike) -> None:
        """Write the image atomically (temp file + ``os.replace``)."""
        atomic_write_bytes(path, self.to_bytes())

    @classmethod
    def load(cls, path: str | os.PathLike, codec: BlockCodec,
             cost_model: CostModel | None = None,
             cache: PageCache | None = None,
             sequence_id: int | None = None) -> "BlockSequence":
        with open(path, "rb") as fh:
            data = fh.read()
        return cls.from_bytes(data, codec, cost_model=cost_model,
                              cache=cache, source=str(path),
                              sequence_id=sequence_id)
