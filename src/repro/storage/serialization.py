"""Binary codecs for table rows.

The paper's tables live in BerkeleyDB, where every row has a concrete
byte representation; the *size* of the RPL/ERPL representations is what
the self-managing index advisor trades off against the disk budget
``d``.  These codecs give every row in this reproduction a concrete
binary encoding so that index sizes are measured in real bytes, and so
that tables can be persisted to and reloaded from disk files.

All integers are encoded as unsigned LEB128 varints (with zig-zag for
signed values), strings as length-prefixed UTF-8, floats as IEEE-754
doubles, and composite values as concatenations — a compact, self-
delimiting format in the spirit of what a storage engine would use.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..errors import CodecError

__all__ = [
    "Codec",
    "UIntCodec",
    "IntCodec",
    "FloatCodec",
    "StringCodec",
    "BoolCodec",
    "ListCodec",
    "TupleCodec",
    "BlockHeader",
    "BlockCodec",
    "encoded_size",
]


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated uvarint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("uvarint too long")


class Codec:
    """Base interface: encode into a bytearray, decode from bytes."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        raise NotImplementedError

    def decode_from(self, data: bytes, offset: int) -> tuple[Any, int]:
        raise NotImplementedError

    # Convenience wrappers -------------------------------------------------
    def encode(self, value: Any) -> bytes:
        out = bytearray()
        self.encode_into(out, value)
        return bytes(out)

    def decode(self, data: bytes) -> Any:
        value, offset = self.decode_from(data, 0)
        if offset != len(data):
            raise CodecError(f"{len(data) - offset} trailing bytes after decode")
        return value


class UIntCodec(Codec):
    """Non-negative integers as LEB128 varints."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"expected int, got {type(value).__name__}")
        _write_uvarint(out, value)

    def decode_from(self, data: bytes, offset: int) -> tuple[int, int]:
        return _read_uvarint(data, offset)


class IntCodec(Codec):
    """Signed integers, zig-zag mapped onto varints."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"expected int, got {type(value).__name__}")
        zigzag = (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else None
        if zigzag is None:
            # Fall back to a sign-magnitude form for arbitrary precision.
            raise CodecError(f"int out of 64-bit range: {value}")
        _write_uvarint(out, zigzag & ((1 << 64) - 1))

    def decode_from(self, data: bytes, offset: int) -> tuple[int, int]:
        zigzag, offset = _read_uvarint(data, offset)
        value = (zigzag >> 1) ^ -(zigzag & 1)
        return value, offset


class FloatCodec(Codec):
    """IEEE-754 double precision, big endian."""

    _packer = struct.Struct(">d")

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CodecError(f"expected float, got {type(value).__name__}")
        out.extend(self._packer.pack(float(value)))

    def decode_from(self, data: bytes, offset: int) -> tuple[float, int]:
        end = offset + self._packer.size
        if end > len(data):
            raise CodecError("truncated float")
        return self._packer.unpack_from(data, offset)[0], end


class StringCodec(Codec):
    """Length-prefixed UTF-8."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, str):
            raise CodecError(f"expected str, got {type(value).__name__}")
        raw = value.encode("utf-8")
        _write_uvarint(out, len(raw))
        out.extend(raw)

    def decode_from(self, data: bytes, offset: int) -> tuple[str, int]:
        length, offset = _read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated string")
        return data[offset:end].decode("utf-8"), end


class BoolCodec(Codec):
    """Single byte 0/1."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, bool):
            raise CodecError(f"expected bool, got {type(value).__name__}")
        out.append(1 if value else 0)

    def decode_from(self, data: bytes, offset: int) -> tuple[bool, int]:
        if offset >= len(data):
            raise CodecError("truncated bool")
        byte = data[offset]
        if byte not in (0, 1):
            raise CodecError(f"invalid bool byte {byte}")
        return bool(byte), offset + 1


class ListCodec(Codec):
    """Count-prefixed homogeneous list of an inner codec."""

    def __init__(self, inner: Codec) -> None:
        self.inner = inner

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise CodecError(f"expected list, got {type(value).__name__}")
        _write_uvarint(out, len(value))
        for item in value:
            self.inner.encode_into(out, item)

    def decode_from(self, data: bytes, offset: int) -> tuple[list[Any], int]:
        count, offset = _read_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = self.inner.decode_from(data, offset)
            items.append(item)
        return items, offset


class TupleCodec(Codec):
    """Fixed sequence of heterogeneous fields."""

    def __init__(self, fields: Sequence[Codec]) -> None:
        self.fields = tuple(fields)

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, (list, tuple)) or len(value) != len(self.fields):
            raise CodecError(
                f"expected sequence of {len(self.fields)} fields, got {value!r}")
        for codec, item in zip(self.fields, value):
            codec.encode_into(out, item)

    def decode_from(self, data: bytes, offset: int) -> tuple[tuple[Any, ...], int]:
        items = []
        for codec in self.fields:
            item, offset = codec.decode_from(data, offset)
            items.append(item)
        return tuple(items), offset


@dataclass(frozen=True)
class BlockHeader:
    """Resident metadata for one compressed block of entries.

    A sequence of headers *is* the skip directory: ``first_key`` /
    ``last_key`` let position-driven readers (ERA, Merge) leap over
    blocks that cannot contain the probe, and ``max_score`` lets
    score-driven readers (TA family) prune blocks whose best entry
    cannot beat the current heap threshold.
    """

    first_key: tuple[int, ...]
    last_key: tuple[int, ...]
    max_score: float
    count: int
    byte_len: int


class BlockCodec(Codec):
    """Packs a run of sorted flat tuples into one compressed block.

    Entries are tuples whose first ``key_width`` components are
    non-negative ints, lexicographically non-decreasing across the run;
    the remaining components are payload fields encoded by
    ``payload_codecs``.  Keys are delta-compressed: entry 0 is stored
    absolutely, each later entry stores the index ``d`` of its first
    key component that differs from its predecessor, the (positive)
    delta at ``d``, and components after ``d`` absolutely — the classic
    prefix-delta scheme for composite keys under varints.

    ``score_index`` names the entry component whose maximum becomes the
    block header's ``max_score`` (``None`` → 0.0, for score-free blocks
    such as posting fragments).
    """

    def __init__(self, key_width: int,
                 payload_codecs: Sequence[Codec] = (),
                 score_index: int | None = None) -> None:
        if key_width < 1:
            raise CodecError("key_width must be >= 1")
        self.key_width = key_width
        self.payload_codecs = tuple(payload_codecs)
        self.score_index = score_index
        self._width = key_width + len(self.payload_codecs)

    # ------------------------------------------------------------------
    def encode_block(self, entries: Sequence[tuple]) -> tuple[BlockHeader, bytes]:
        """Encode *entries* → ``(header, payload_bytes)``."""
        if not entries:
            raise CodecError("cannot encode an empty block")
        out = bytearray()
        kw = self.key_width
        previous: tuple[int, ...] | None = None
        max_score = 0.0
        for entry in entries:
            if len(entry) != self._width:
                raise CodecError(
                    f"expected entry of {self._width} fields, got {entry!r}")
            key = tuple(entry[:kw])
            for component in key:
                if not isinstance(component, int) or component < 0:
                    raise CodecError(
                        f"block keys must be non-negative ints, got {key!r}")
            if previous is None:
                for component in key:
                    _write_uvarint(out, component)
            else:
                if key < previous:
                    raise CodecError(
                        f"block entries out of order: {key!r} after {previous!r}")
                if kw == 1:
                    # Single-component keys need no diverge index: the
                    # (non-negative) delta alone is unambiguous.
                    _write_uvarint(out, key[0] - previous[0])
                else:
                    diverge = kw
                    for index in range(kw):
                        if key[index] != previous[index]:
                            diverge = index
                            break
                    _write_uvarint(out, diverge)
                    if diverge < kw:
                        _write_uvarint(out, key[diverge] - previous[diverge])
                        for component in key[diverge + 1:]:
                            _write_uvarint(out, component)
            previous = key
            for codec, value in zip(self.payload_codecs, entry[kw:]):
                codec.encode_into(out, value)
            if self.score_index is not None:
                score = float(entry[self.score_index])
                if score > max_score:
                    max_score = score
        header = BlockHeader(
            first_key=tuple(entries[0][:kw]),
            last_key=tuple(entries[-1][:kw]),
            max_score=max_score,
            count=len(entries),
            byte_len=len(out),
        )
        return header, bytes(out)

    def decode_block(self, data: bytes, count: int) -> list[tuple]:
        """Decode *count* entries from one block payload."""
        kw = self.key_width
        offset = 0
        entries: list[tuple] = []
        previous: tuple[int, ...] | None = None
        for _ in range(count):
            if previous is None:
                key_parts = []
                for _ in range(kw):
                    component, offset = _read_uvarint(data, offset)
                    key_parts.append(component)
                key = tuple(key_parts)
            elif kw == 1:
                delta, offset = _read_uvarint(data, offset)
                key = (previous[0] + delta,)
            else:
                diverge, offset = _read_uvarint(data, offset)
                if diverge > kw:
                    raise CodecError(f"corrupt block: diverge index {diverge}")
                if diverge == kw:
                    key = previous
                else:
                    delta, offset = _read_uvarint(data, offset)
                    key_parts = list(previous[:diverge])
                    key_parts.append(previous[diverge] + delta)
                    for _ in range(diverge + 1, kw):
                        component, offset = _read_uvarint(data, offset)
                        key_parts.append(component)
                    key = tuple(key_parts)
            previous = key
            payload = []
            for codec in self.payload_codecs:
                value, offset = codec.decode_from(data, offset)
                payload.append(value)
            entries.append(key + tuple(payload))
        if offset != len(data):
            raise CodecError(
                f"{len(data) - offset} trailing bytes after block decode")
        return entries


def encoded_size(codec: Codec, values: Iterable[Any]) -> int:
    """Total encoded size in bytes of *values* under *codec*."""
    out = bytearray()
    for value in values:
        codec.encode_into(out, value)
    return len(out)
