"""Binary codecs for table rows.

The paper's tables live in BerkeleyDB, where every row has a concrete
byte representation; the *size* of the RPL/ERPL representations is what
the self-managing index advisor trades off against the disk budget
``d``.  These codecs give every row in this reproduction a concrete
binary encoding so that index sizes are measured in real bytes, and so
that tables can be persisted to and reloaded from disk files.

All integers are encoded as unsigned LEB128 varints (with zig-zag for
signed values), strings as length-prefixed UTF-8, floats as IEEE-754
doubles, and composite values as concatenations — a compact, self-
delimiting format in the spirit of what a storage engine would use.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..errors import CodecError

__all__ = [
    "Codec",
    "UIntCodec",
    "IntCodec",
    "FloatCodec",
    "StringCodec",
    "BoolCodec",
    "ListCodec",
    "TupleCodec",
    "BlockHeader",
    "BlockColumns",
    "BlockCodec",
    "encoded_size",
]


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated uvarint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("uvarint too long")


class Codec:
    """Base interface: encode into a bytearray, decode from bytes."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        raise NotImplementedError

    def decode_from(self, data: bytes, offset: int) -> tuple[Any, int]:
        raise NotImplementedError

    # Convenience wrappers -------------------------------------------------
    def encode(self, value: Any) -> bytes:
        out = bytearray()
        self.encode_into(out, value)
        return bytes(out)

    def decode(self, data: bytes) -> Any:
        value, offset = self.decode_from(data, 0)
        if offset != len(data):
            raise CodecError(f"{len(data) - offset} trailing bytes after decode")
        return value


class UIntCodec(Codec):
    """Non-negative integers as LEB128 varints."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"expected int, got {type(value).__name__}")
        _write_uvarint(out, value)

    def decode_from(self, data: bytes, offset: int) -> tuple[int, int]:
        return _read_uvarint(data, offset)


class IntCodec(Codec):
    """Signed integers, zig-zag mapped onto varints."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"expected int, got {type(value).__name__}")
        zigzag = (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else None
        if zigzag is None:
            # Fall back to a sign-magnitude form for arbitrary precision.
            raise CodecError(f"int out of 64-bit range: {value}")
        _write_uvarint(out, zigzag & ((1 << 64) - 1))

    def decode_from(self, data: bytes, offset: int) -> tuple[int, int]:
        zigzag, offset = _read_uvarint(data, offset)
        value = (zigzag >> 1) ^ -(zigzag & 1)
        return value, offset


class FloatCodec(Codec):
    """IEEE-754 double precision, big endian."""

    _packer = struct.Struct(">d")

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CodecError(f"expected float, got {type(value).__name__}")
        out.extend(self._packer.pack(float(value)))

    def decode_from(self, data: bytes, offset: int) -> tuple[float, int]:
        end = offset + self._packer.size
        if end > len(data):
            raise CodecError("truncated float")
        return self._packer.unpack_from(data, offset)[0], end


class StringCodec(Codec):
    """Length-prefixed UTF-8."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, str):
            raise CodecError(f"expected str, got {type(value).__name__}")
        raw = value.encode("utf-8")
        _write_uvarint(out, len(raw))
        out.extend(raw)

    def decode_from(self, data: bytes, offset: int) -> tuple[str, int]:
        length, offset = _read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated string")
        return data[offset:end].decode("utf-8"), end


class BoolCodec(Codec):
    """Single byte 0/1."""

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, bool):
            raise CodecError(f"expected bool, got {type(value).__name__}")
        out.append(1 if value else 0)

    def decode_from(self, data: bytes, offset: int) -> tuple[bool, int]:
        if offset >= len(data):
            raise CodecError("truncated bool")
        byte = data[offset]
        if byte not in (0, 1):
            raise CodecError(f"invalid bool byte {byte}")
        return bool(byte), offset + 1


class ListCodec(Codec):
    """Count-prefixed homogeneous list of an inner codec."""

    def __init__(self, inner: Codec) -> None:
        self.inner = inner

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise CodecError(f"expected list, got {type(value).__name__}")
        _write_uvarint(out, len(value))
        for item in value:
            self.inner.encode_into(out, item)

    def decode_from(self, data: bytes, offset: int) -> tuple[list[Any], int]:
        count, offset = _read_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = self.inner.decode_from(data, offset)
            items.append(item)
        return items, offset


class TupleCodec(Codec):
    """Fixed sequence of heterogeneous fields."""

    def __init__(self, fields: Sequence[Codec]) -> None:
        self.fields = tuple(fields)

    def encode_into(self, out: bytearray, value: Any) -> None:
        if not isinstance(value, (list, tuple)) or len(value) != len(self.fields):
            raise CodecError(
                f"expected sequence of {len(self.fields)} fields, got {value!r}")
        for codec, item in zip(self.fields, value):
            codec.encode_into(out, item)

    def decode_from(self, data: bytes, offset: int) -> tuple[tuple[Any, ...], int]:
        items = []
        for codec in self.fields:
            item, offset = codec.decode_from(data, offset)
            items.append(item)
        return tuple(items), offset


class BlockColumns:
    """One decoded block as parallel columns instead of row tuples.

    ``keys`` holds ``key_width`` equal-length integer columns and
    ``payloads`` one column per payload codec.  Integer and float
    columns are ``array``-backed (typecodes ``'Q'``/``'d'``), so they
    support the buffer protocol (``memoryview(column)`` is zero-copy)
    and index access returns plain Python ints/floats — ``rows()``
    therefore reconstructs exactly the tuples the entry-at-a-time
    decoder produces.  Generic payload columns (strings, lists) stay
    plain lists.
    """

    __slots__ = ("count", "keys", "payloads")

    def __init__(self, count: int, keys: tuple, payloads: tuple) -> None:
        self.count = count
        self.keys = keys
        self.payloads = payloads

    def __len__(self) -> int:
        return self.count

    def rows(self) -> list[tuple]:
        """Materialize the row-tuple view (the entry-level shim)."""
        if not self.count:
            return []
        return list(zip(*self.keys, *self.payloads))

    def row(self, index: int) -> tuple:
        """One row tuple, assembled from the columns."""
        return (tuple(column[index] for column in self.keys)
                + tuple(column[index] for column in self.payloads))


def _uint_column(values: list[int]) -> "array | list[int]":
    """Pack non-negative ints into an ``array('Q')``; fall back to the
    plain list for (pathological) values beyond 64 bits."""
    try:
        return array("Q", values)
    except OverflowError:
        return values


def _uvarint_lines(var: str, indent: int) -> list[str]:
    """Source lines decoding one uvarint into *var* (fast path first:
    delta compression makes single-byte varints the common case)."""
    pad = " " * indent
    return [
        f"{pad}if offset >= size:",
        f"{pad}    raise CodecError('truncated uvarint')",
        f"{pad}byte = data[offset]",
        f"{pad}offset += 1",
        f"{pad}if byte < 0x80:",
        f"{pad}    {var} = byte",
        f"{pad}else:",
        f"{pad}    {var} = byte & 0x7F",
        f"{pad}    shift = 7",
        f"{pad}    while True:",
        f"{pad}        if offset >= size:",
        f"{pad}            raise CodecError('truncated uvarint')",
        f"{pad}        byte = data[offset]",
        f"{pad}        offset += 1",
        f"{pad}        {var} |= (byte & 0x7F) << shift",
        f"{pad}        if not byte & 0x80:",
        f"{pad}            break",
        f"{pad}        shift += 7",
        f"{pad}        if shift > 70:",
        f"{pad}            raise CodecError('uvarint too long')",
    ]


_DecodeFn = Any  # (data, count) -> (key column lists, payload column lists)
_DECODER_CACHE: dict[tuple[int, str], _DecodeFn] = {}


def _compile_decoder(key_width: int, kinds: str) -> _DecodeFn:
    """Build a decode loop specialized to one block layout.

    Block payloads interleave per-entry fields, so the decoder is an
    inherently sequential Python loop; what a specialized loop removes
    is every per-field dispatch — the plan walk, kind tests, and append
    indirection — by unrolling the exact field sequence of the layout
    into straight-line code (the ``namedtuple`` technique).  Only
    layouts made purely of varints and floats are compiled; generic
    payloads take the interpreted plan walk in ``decode_columns``.
    """
    cached = _DECODER_CACHE.get((key_width, kinds))
    if cached is not None:
        return cached
    lines = [
        "def _decode(data, count):",
        "    size = len(data)",
        "    offset = 0",
    ]
    for index in range(key_width):
        lines += [f"    kc{index} = []", f"    ka{index} = kc{index}.append",
                  f"    prev{index} = 0"]
    for slot in range(len(kinds)):
        lines += [f"    pc{slot} = []", f"    pa{slot} = pc{slot}.append"]
    lines.append("    for entry_index in range(count):")
    lines.append("        if entry_index:")
    if key_width == 1:
        lines += _uvarint_lines("delta", 12)
        lines += ["            prev0 += delta", "            ka0(prev0)"]
        lines.append("        else:")
        lines += _uvarint_lines("prev0", 12)
        lines.append("            ka0(prev0)")
    else:
        lines += _uvarint_lines("diverge", 12)
        for diverge in range(key_width):
            guard = "if" if diverge == 0 else "elif"
            lines.append(f"            {guard} diverge == {diverge}:")
            lines += _uvarint_lines("delta", 16)
            lines.append(f"                prev{diverge} += delta")
            for index in range(diverge + 1, key_width):
                lines += _uvarint_lines(f"prev{index}", 16)
        lines += [
            f"            elif diverge != {key_width}:",
            "                raise CodecError("
            "f'corrupt block: diverge index {diverge}')",
        ]
        lines.append("        else:")
        for index in range(key_width):
            lines += _uvarint_lines(f"prev{index}", 12)
        for index in range(key_width):
            lines.append(f"        ka{index}(prev{index})")
    for slot, kind in enumerate(kinds):
        if kind == "u":
            lines += _uvarint_lines("value", 8)
            lines.append(f"        pa{slot}(value)")
        else:
            lines += [
                "        end = offset + 8",
                "        if end > size:",
                "            raise CodecError('truncated float')",
                f"        pa{slot}(unpack_float(data, offset)[0])",
                "        offset = end",
            ]
    lines += [
        "    if offset != size:",
        "        raise CodecError(",
        "            f'{size - offset} trailing bytes after block decode')",
        "    return [" + ", ".join(f"kc{i}" for i in range(key_width)) + "], \\",
        "        [" + ", ".join(f"pc{i}" for i in range(len(kinds))) + "]",
    ]
    namespace: dict[str, Any] = {
        "CodecError": CodecError,
        "unpack_float": FloatCodec._packer.unpack_from,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
    decoder = namespace["_decode"]
    _DECODER_CACHE[(key_width, kinds)] = decoder
    return decoder


@dataclass(frozen=True)
class BlockHeader:
    """Resident metadata for one compressed block of entries.

    A sequence of headers *is* the skip directory: ``first_key`` /
    ``last_key`` let position-driven readers (ERA, Merge) leap over
    blocks that cannot contain the probe, and ``max_score`` lets
    score-driven readers (TA family) prune blocks whose best entry
    cannot beat the current heap threshold.
    """

    first_key: tuple[int, ...]
    last_key: tuple[int, ...]
    max_score: float
    count: int
    byte_len: int


class BlockCodec(Codec):
    """Packs a run of sorted flat tuples into one compressed block.

    Entries are tuples whose first ``key_width`` components are
    non-negative ints, lexicographically non-decreasing across the run;
    the remaining components are payload fields encoded by
    ``payload_codecs``.  Keys are delta-compressed: entry 0 is stored
    absolutely, each later entry stores the index ``d`` of its first
    key component that differs from its predecessor, the (positive)
    delta at ``d``, and components after ``d`` absolutely — the classic
    prefix-delta scheme for composite keys under varints.

    ``score_index`` names the entry component whose maximum becomes the
    block header's ``max_score`` (``None`` → 0.0, for score-free blocks
    such as posting fragments).
    """

    def __init__(self, key_width: int,
                 payload_codecs: Sequence[Codec] = (),
                 score_index: int | None = None) -> None:
        if key_width < 1:
            raise CodecError("key_width must be >= 1")
        self.key_width = key_width
        self.payload_codecs = tuple(payload_codecs)
        self.score_index = score_index
        self._width = key_width + len(self.payload_codecs)
        # Decode plan for the columnar batch path: varints and floats are
        # decoded inline (no per-field codec dispatch); anything else
        # falls back to the codec object per entry.
        self._plan = tuple(
            ("u" if type(codec) is UIntCodec
             else "f" if type(codec) is FloatCodec
             else "g", codec)
            for codec in self.payload_codecs)
        kinds = "".join(kind for kind, _codec in self._plan)
        # Pure varint/float layouts (all production indexes) get a loop
        # compiled for their exact field sequence; mixed layouts keep
        # the interpreted plan walk below.
        self._decoder: _DecodeFn | None = (
            _compile_decoder(key_width, kinds) if "g" not in kinds else None)

    # ------------------------------------------------------------------
    def encode_block(self, entries: Sequence[tuple]) -> tuple[BlockHeader, bytes]:
        """Encode *entries* → ``(header, payload_bytes)``."""
        if not entries:
            raise CodecError("cannot encode an empty block")
        out = bytearray()
        kw = self.key_width
        previous: tuple[int, ...] | None = None
        max_score = 0.0
        for entry in entries:
            if len(entry) != self._width:
                raise CodecError(
                    f"expected entry of {self._width} fields, got {entry!r}")
            key = tuple(entry[:kw])
            for component in key:
                if not isinstance(component, int) or component < 0:
                    raise CodecError(
                        f"block keys must be non-negative ints, got {key!r}")
            if previous is None:
                for component in key:
                    _write_uvarint(out, component)
            else:
                if key < previous:
                    raise CodecError(
                        f"block entries out of order: {key!r} after {previous!r}")
                if kw == 1:
                    # Single-component keys need no diverge index: the
                    # (non-negative) delta alone is unambiguous.
                    _write_uvarint(out, key[0] - previous[0])
                else:
                    diverge = kw
                    for index in range(kw):
                        if key[index] != previous[index]:
                            diverge = index
                            break
                    _write_uvarint(out, diverge)
                    if diverge < kw:
                        _write_uvarint(out, key[diverge] - previous[diverge])
                        for component in key[diverge + 1:]:
                            _write_uvarint(out, component)
            previous = key
            for codec, value in zip(self.payload_codecs, entry[kw:]):
                codec.encode_into(out, value)
            if self.score_index is not None:
                score = float(entry[self.score_index])
                if score > max_score:
                    max_score = score
        header = BlockHeader(
            first_key=tuple(entries[0][:kw]),
            last_key=tuple(entries[-1][:kw]),
            max_score=max_score,
            count=len(entries),
            byte_len=len(out),
        )
        return header, bytes(out)

    def decode_columns(self, data: bytes, count: int) -> BlockColumns:
        """Batch-decode one block payload into parallel columns.

        This is the canonical decoder: one pass over the payload bytes
        with the varint loop inlined (no per-field function calls), key
        deltas resolved against running previous-key state, and each
        field appended to its column.  ``decode_block`` is a thin shim
        that zips the columns back into row tuples, so both views are
        guaranteed to agree.
        """
        kw = self.key_width
        plan = self._plan
        if self._decoder is not None:
            fast_keys, fast_payloads = self._decoder(data, count)
            keys = tuple(_uint_column(column) for column in fast_keys)
            payloads = tuple(
                array("d", column) if kind == "f" else _uint_column(column)
                for (kind, _codec), column in zip(plan, fast_payloads))
            return BlockColumns(count, keys, payloads)
        key_cols: list[list[int]] = [[] for _ in range(kw)]
        payload_cols: list[list[Any]] = [[] for _ in plan]
        key_appends = [column.append for column in key_cols]
        key_append0 = key_appends[0]
        # One (kind, codec, append) step per payload field, hoisted so
        # the per-entry loop carries no enumerate/indexing overhead.
        steps = tuple((kind, codec, column.append)
                      for (kind, codec), column in zip(plan, payload_cols))
        unpack_float = FloatCodec._packer.unpack_from
        size = len(data)
        offset = 0
        first = True
        previous = [0] * kw
        prev0 = 0
        for _ in range(count):
            # Every varint takes the single-byte fast path first: delta
            # compression makes >1-byte varints the rare case, and the
            # fast path skips all shift bookkeeping.
            if first:
                first = False
                for index in range(kw):
                    if offset >= size:
                        raise CodecError("truncated uvarint")
                    byte = data[offset]
                    offset += 1
                    if byte < 0x80:
                        component = byte
                    else:
                        component = byte & 0x7F
                        shift = 7
                        while True:
                            if offset >= size:
                                raise CodecError("truncated uvarint")
                            byte = data[offset]
                            offset += 1
                            component |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                raise CodecError("uvarint too long")
                    previous[index] = component
                    key_appends[index](component)
                prev0 = previous[0]
            elif kw == 1:
                if offset >= size:
                    raise CodecError("truncated uvarint")
                byte = data[offset]
                offset += 1
                if byte < 0x80:
                    delta = byte
                else:
                    delta = byte & 0x7F
                    shift = 7
                    while True:
                        if offset >= size:
                            raise CodecError("truncated uvarint")
                        byte = data[offset]
                        offset += 1
                        delta |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 70:
                            raise CodecError("uvarint too long")
                prev0 += delta
                key_append0(prev0)
            else:
                diverge, offset = _read_uvarint(data, offset)
                if diverge > kw:
                    raise CodecError(f"corrupt block: diverge index {diverge}")
                if diverge < kw:
                    delta, offset = _read_uvarint(data, offset)
                    previous[diverge] += delta
                    for index in range(diverge + 1, kw):
                        component, offset = _read_uvarint(data, offset)
                        previous[index] = component
                for index in range(kw):
                    key_appends[index](previous[index])
            for kind, codec, append in steps:
                if kind == "u":
                    if offset >= size:
                        raise CodecError("truncated uvarint")
                    byte = data[offset]
                    offset += 1
                    if byte < 0x80:
                        append(byte)
                        continue
                    value = byte & 0x7F
                    shift = 7
                    while True:
                        if offset >= size:
                            raise CodecError("truncated uvarint")
                        byte = data[offset]
                        offset += 1
                        value |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 70:
                            raise CodecError("uvarint too long")
                    append(value)
                elif kind == "f":
                    end = offset + 8
                    if end > size:
                        raise CodecError("truncated float")
                    append(unpack_float(data, offset)[0])
                    offset = end
                else:
                    decoded, offset = codec.decode_from(data, offset)
                    append(decoded)
        if offset != size:
            raise CodecError(
                f"{size - offset} trailing bytes after block decode")
        keys = tuple(_uint_column(column) for column in key_cols)
        payloads = tuple(
            _uint_column(column) if kind == "u"
            else array("d", column) if kind == "f"
            else column
            for (kind, _codec), column in zip(plan, payload_cols))
        return BlockColumns(count, keys, payloads)

    def decode_block(self, data: bytes, count: int) -> list[tuple]:
        """Decode *count* entries as row tuples (shim over the columns)."""
        return self.decode_columns(data, count).rows()

    def decode_block_scalar(self, data: bytes, count: int) -> list[tuple]:
        """Reference entry-at-a-time decoder.

        Kept as the oracle the columnar batch decoder is proven against
        (round-trip property tests) and as the pre-refactor baseline the
        wall-clock benchmark lane measures speedups from.  Not used on
        any query path.
        """
        kw = self.key_width
        offset = 0
        entries: list[tuple] = []
        previous: tuple[int, ...] | None = None
        for _ in range(count):
            if previous is None:
                key_parts = []
                for _ in range(kw):
                    component, offset = _read_uvarint(data, offset)
                    key_parts.append(component)
                key = tuple(key_parts)
            elif kw == 1:
                delta, offset = _read_uvarint(data, offset)
                key = (previous[0] + delta,)
            else:
                diverge, offset = _read_uvarint(data, offset)
                if diverge > kw:
                    raise CodecError(f"corrupt block: diverge index {diverge}")
                if diverge == kw:
                    key = previous
                else:
                    delta, offset = _read_uvarint(data, offset)
                    key_parts = list(previous[:diverge])
                    key_parts.append(previous[diverge] + delta)
                    for _ in range(diverge + 1, kw):
                        component, offset = _read_uvarint(data, offset)
                        key_parts.append(component)
                    key = tuple(key_parts)
            previous = key
            payload = []
            for codec in self.payload_codecs:
                value, offset = codec.decode_from(data, offset)
                payload.append(value)
            entries.append(key + tuple(payload))
        if offset != len(data):
            raise CodecError(
                f"{len(data) - offset} trailing bytes after block decode")
        return entries


def encoded_size(codec: Codec, values: Iterable[Any]) -> int:
    """Total encoded size in bytes of *values* under *codec*."""
    out = bytearray()
    for value in values:
        codec.encode_into(out, value)
    return len(out)
