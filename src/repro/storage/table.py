"""Schema'd tables over the B+-tree, in the style of the paper's BDB tables.

The paper stores four indexed tables::

    Elements(SID, docid, endpos, length)
    PostingLists(token, docid, offset, postingdataentry)
    RPLs(token, ir, SID, docid, endpos, rpldataentry)
    ERPLs(token, SID, docid, endpos, ir, erpldataentry)

with the primary key underlined and "for each table, an index on the
primary key provides a sequential access to the tuples".  This module
provides exactly that abstraction: a :class:`Table` has named, typed
columns, a key prefix, and supports point gets, prefix scans and
ordered cursors.  Row bytes are accounted via the column codecs so that
``size_bytes`` reports the real on-disk footprint, which the
self-managing advisor uses as storage cost.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from ..errors import SchemaError, StorageError
from .btree import BPlusTree, Cursor
from .cost import CostModel, GLOBAL_COST_MODEL
from .pager import PageCache
from .serialization import (
    BoolCodec,
    Codec,
    FloatCodec,
    IntCodec,
    ListCodec,
    StringCodec,
    TupleCodec,
    UIntCodec,
)

__all__ = ["Column", "Schema", "Table", "column_codec"]

_SCALAR_CODECS: dict[str, Codec] = {
    "uint": UIntCodec(),
    "int": IntCodec(),
    "float": FloatCodec(),
    "str": StringCodec(),
    "bool": BoolCodec(),
}


def column_codec(type_name: str) -> Codec:
    """Resolve a column type name to a codec.

    Supported names: ``uint``, ``int``, ``float``, ``str``, ``bool``,
    and ``list[...]`` / ``tuple[a,b,...]`` compositions thereof, e.g.
    ``list[tuple[uint,uint]]`` for the paper's posting-data entries.
    """
    name = type_name.strip()
    if name in _SCALAR_CODECS:
        return _SCALAR_CODECS[name]
    if name.startswith("list[") and name.endswith("]"):
        return ListCodec(column_codec(name[5:-1]))
    if name.startswith("tuple[") and name.endswith("]"):
        inner = name[6:-1]
        parts: list[str] = []
        depth = 0
        current = []
        for ch in inner:
            if ch == "," and depth == 0:
                parts.append("".join(current))
                current = []
                continue
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            current.append(ch)
        if current:
            parts.append("".join(current))
        return TupleCodec([column_codec(p) for p in parts])
    raise SchemaError(f"unknown column type: {type_name!r}")


@dataclass(frozen=True)
class Column:
    """A named, typed table column."""

    name: str
    type_name: str

    @property
    def codec(self) -> Codec:
        return column_codec(self.type_name)


class Schema:
    """Column list plus the length of the primary-key prefix."""

    def __init__(self, columns: Sequence[Column], key_length: int) -> None:
        if not 1 <= key_length <= len(columns):
            raise SchemaError("key_length must cover a non-empty column prefix")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.columns = tuple(columns)
        self.key_length = key_length
        self._codecs = tuple(c.codec for c in columns)
        self._row_codec = TupleCodec(self._codecs)
        self._index = {c.name: i for i, c in enumerate(columns)}

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def key_columns(self) -> tuple[Column, ...]:
        return self.columns[: self.key_length]

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def validate(self, row: Sequence[Any]) -> tuple[Any, ...]:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} fields, schema has {len(self.columns)}")
        return tuple(row)

    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        return tuple(row[: self.key_length])

    def encode_row(self, row: Sequence[Any]) -> bytes:
        return self._row_codec.encode(self.validate(row))

    def decode_row(self, data: bytes) -> tuple[Any, ...]:
        return self._row_codec.decode(data)

    def row_size(self, row: Sequence[Any]) -> int:
        return len(self.encode_row(row))


class Table:
    """An ordered table: rows stored by primary key in a B+-tree.

    Rows are kept as decoded tuples for speed, but ``size_bytes`` tracks
    the encoded footprint and ``save``/``load`` round-trip rows through
    the binary codecs, so the encoding is always exercised.
    """

    def __init__(self, name: str, schema: Schema, *,
                 cost_model: CostModel | None = None,
                 cache: PageCache | None = None,
                 btree_order: int = 64) -> None:
        self.name = name
        self.schema = schema
        self.cost_model = cost_model if cost_model is not None else GLOBAL_COST_MODEL
        self._tree = BPlusTree(order=btree_order, cache=cache, cost_model=self.cost_model)
        self._size_bytes = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> None:
        """Insert *row*; replaces any row with the same primary key."""
        row = self.schema.validate(row)
        key = self.schema.key_of(row)
        encoded = self.schema.encode_row(row)
        existing = self._tree.get(key)
        if existing is not None:
            self._size_bytes -= self.schema.row_size(existing)
        self._tree.put(key, row)
        self._size_bytes += len(encoded)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def delete(self, key: Sequence[Any]) -> bool:
        key = tuple(key)
        existing = self._tree.get(key)
        if existing is None:
            return False
        self._tree.delete(key)
        self._size_bytes -= self.schema.row_size(existing)
        return True

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def get(self, key: Sequence[Any]) -> tuple[Any, ...] | None:
        """Point lookup by full primary key."""
        key = tuple(key)
        if len(key) != self.schema.key_length:
            raise StorageError(
                f"{self.name}: point lookup needs the full {self.schema.key_length}-column key")
        return self._tree.get(key)

    def seek(self, key_prefix: Sequence[Any]) -> Cursor:
        """Cursor at the first row whose key is ``>=`` the given prefix.

        Prefixes shorter than the key are padded conceptually with
        minus infinity, which for tuple comparison means using the bare
        prefix tuple (shorter tuples sort before their extensions).
        """
        return self._tree.seek(tuple(key_prefix))

    def first(self) -> Cursor:
        return self._tree.first()

    def scan(self) -> Iterator[tuple[Any, ...]]:
        """Yield every row in primary-key order."""
        for _, row in self._tree.items():
            yield row

    def scan_prefix(self, key_prefix: Sequence[Any]) -> Iterator[tuple[Any, ...]]:
        """Yield rows whose primary key starts with *key_prefix*, in order."""
        prefix = tuple(key_prefix)
        if len(prefix) > self.schema.key_length:
            raise StorageError(f"{self.name}: prefix longer than key")
        cursor = self._tree.seek(prefix)
        plen = len(prefix)
        while cursor.valid:
            key = cursor.key
            self.cost_model.compare()
            if tuple(key[:plen]) != prefix:
                return
            yield cursor.value
            cursor.advance()

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def size_bytes(self) -> int:
        """Encoded size of all rows (the table's simulated disk footprint)."""
        return self._size_bytes

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    MAGIC = b"TRXT\x01"

    def save(self, path: str) -> None:
        """Write all rows to *path* in a length-prefixed binary format."""
        with open(path, "wb") as fh:
            fh.write(self.MAGIC)
            header = StringCodec().encode(self.name)
            fh.write(len(header).to_bytes(4, "big"))
            fh.write(header)
            fh.write(len(self._tree).to_bytes(8, "big"))
            for _, row in self._tree.items():
                encoded = self.schema.encode_row(row)
                fh.write(len(encoded).to_bytes(4, "big"))
                fh.write(encoded)

    def load(self, path: str) -> None:
        """Replace this table's contents with rows read from *path*."""
        with open(path, "rb") as fh:
            data = fh.read()
        stream = io.BytesIO(data)
        if stream.read(len(self.MAGIC)) != self.MAGIC:
            raise StorageError(f"{path}: bad magic, not a table file")
        header_len = int.from_bytes(stream.read(4), "big")
        name = StringCodec().decode(stream.read(header_len))
        if name != self.name:
            raise StorageError(f"{path}: table name mismatch ({name!r} != {self.name!r})")
        count = int.from_bytes(stream.read(8), "big")
        self._tree = BPlusTree(order=self._tree.order, cost_model=self.cost_model)
        self._size_bytes = 0
        items = []
        for _ in range(count):
            row_len = int.from_bytes(stream.read(4), "big")
            encoded = stream.read(row_len)
            if len(encoded) != row_len:
                raise StorageError(f"{path}: truncated row")
            row = self.schema.decode_row(encoded)
            items.append((self.schema.key_of(row), row))
            self._size_bytes += row_len
        # Rows were saved in key order, so the bulk-load fast path applies.
        self._tree.bulk_load(items)
