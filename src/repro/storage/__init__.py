"""Storage engine substrate: B+-tree tables with simulated, metered I/O.

This package replaces the BerkeleyDB layer of the original TReX
implementation.  See DESIGN.md §2 for the substitution rationale.
"""

from .blocks import BlockSequence, DEFAULT_BLOCK_SIZE
from .btree import BPlusTree, Cursor
from .cost import (
    Charge,
    CostCounters,
    CostModel,
    CostSnapshot,
    GLOBAL_COST_MODEL,
    free_cost_model,
)
from .pager import PageCache, PageIdAllocator
from .serialization import (
    BlockCodec,
    BlockHeader,
    BoolCodec,
    Codec,
    FloatCodec,
    IntCodec,
    ListCodec,
    StringCodec,
    TupleCodec,
    UIntCodec,
    encoded_size,
)
from .table import Column, Schema, Table, column_codec

__all__ = [
    "BlockCodec",
    "BlockHeader",
    "BlockSequence",
    "DEFAULT_BLOCK_SIZE",
    "BPlusTree",
    "Cursor",
    "Charge",
    "CostCounters",
    "CostModel",
    "CostSnapshot",
    "GLOBAL_COST_MODEL",
    "free_cost_model",
    "PageCache",
    "PageIdAllocator",
    "BoolCodec",
    "Codec",
    "FloatCodec",
    "IntCodec",
    "ListCodec",
    "StringCodec",
    "TupleCodec",
    "UIntCodec",
    "encoded_size",
    "Column",
    "Schema",
    "Table",
    "column_codec",
]
