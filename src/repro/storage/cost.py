"""Deterministic I/O and CPU cost accounting.

The paper reports wall-clock seconds measured on a 2.4 GHz Opteron with
BerkeleyDB tables.  A reproduction on different hardware cannot (and
should not) match those absolute numbers, so this module provides the
substitute described in DESIGN.md: every physically meaningful event —
page reads, seeks, tuple decodes, heap operations, comparisons, sort
steps — is charged to a :class:`CostModel`.  The "evaluation time" that
the benchmark harness reports is the accumulated simulated cost, which
is deterministic and hardware independent, while preserving the relative
behaviour the paper's figures are about (who wins, by what factor, and
where the crossovers in ``k`` fall).

The charge constants are expressed in abstract *cost units*.  Their
ratios encode the usual storage-engine folklore: a random seek is an
order of magnitude more expensive than reading the next page of a
sequential scan, which is itself an order of magnitude more expensive
than decoding one tuple from an already-resident page, and in-memory
comparisons are cheaper still.

Crucially for the paper's TA-versus-ITA ablation, heap charges are kept
on a *separate meter* so that an "ideal heap" evaluation (the paper's
ITA, which pauses the clock during heap maintenance) can be reported by
simply excluding the heap meter from the total.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class Charge:
    """Default charge constants, in abstract cost units."""

    #: Positioning a cursor with a B+-tree descent (a random I/O).
    SEEK = 40.0
    #: Reading a page that was not in the cache (sequential-ish I/O).
    PAGE_READ = 8.0
    #: Touching a page that was already cached.
    PAGE_HIT = 0.25
    #: Decoding one tuple from a resident page.
    TUPLE_READ = 1.0
    #: Writing one tuple (index construction).
    TUPLE_WRITE = 1.5
    #: One key comparison during merging/scanning.
    COMPARE = 0.05
    #: Per element-moved unit of a sort (multiplied by n log2 n).
    SORT_STEP = 0.12
    #: Per level of a heap sift during insert/remove.
    HEAP_STEP = 1.6
    #: Evaluating the score-combination function once.
    SCORE_COMBINE = 0.2
    #: Fetching one compressed block that was not cached (a short
    #: sequential read; cheaper than a cold B+-tree page because blocks
    #: are packed back to back).
    BLOCK_READ = 6.0
    #: Fixed cost of decompressing one block (header checks, buffer setup).
    BLOCK_DECODE = 1.0
    #: Amortized per-entry cost of delta+varint decoding within a block —
    #: over an order of magnitude below TUPLE_READ, which is the whole
    #: point of batched decoding.
    ENTRY_DECODE = 0.05
    #: Inflating one zlib-compressed block before it can be decoded.
    #: Paid only by segments stored compressed — the explicit CPU side
    #: of the smaller-``size_bytes`` trade the advisor weighs.
    BLOCK_DECOMPRESS = 2.0


@dataclass
class CostCounters:
    """Raw event counters; useful for assertions in tests and benches."""

    seeks: int = 0
    page_reads: int = 0
    page_hits: int = 0
    tuples_read: int = 0
    tuples_written: int = 0
    comparisons: int = 0
    heap_inserts: int = 0
    heap_removes: int = 0
    sort_elements: int = 0
    score_combines: int = 0
    blocks_read: int = 0
    blocks_decoded: int = 0
    blocks_skipped: int = 0
    entries_decoded: int = 0
    blocks_decompressed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "seeks": self.seeks,
            "page_reads": self.page_reads,
            "page_hits": self.page_hits,
            "tuples_read": self.tuples_read,
            "tuples_written": self.tuples_written,
            "comparisons": self.comparisons,
            "heap_inserts": self.heap_inserts,
            "heap_removes": self.heap_removes,
            "sort_elements": self.sort_elements,
            "score_combines": self.score_combines,
            "blocks_read": self.blocks_read,
            "blocks_decoded": self.blocks_decoded,
            "blocks_skipped": self.blocks_skipped,
            "entries_decoded": self.entries_decoded,
            "blocks_decompressed": self.blocks_decompressed,
        }


@dataclass
class CostModel:
    """Accumulates simulated cost for one evaluation context.

    Two meters are kept: :attr:`base_cost` for every non-heap charge and
    :attr:`heap_cost` for heap maintenance.  ``total_cost`` is their sum
    (what the paper calls TA time); ``ideal_cost`` excludes the heap
    meter (the paper's ITA).

    **Thread-scoped routing.**  Storage components (tables, B+-trees,
    page caches) capture a reference to one cost model at construction,
    which is wrong the moment two threads evaluate concurrently: their
    charges would interleave on shared meters, and one thread's
    ``muted()`` block would silently swallow another's charges.  The
    :meth:`scoped` context manager fixes this without rewiring any
    component: it routes *this* model's charges, for the current thread
    only, to a private per-worker model.  Threads that never enter a
    scope keep charging the model directly, so single-threaded code is
    unaffected.
    """

    charge: type[Charge] = Charge
    base_cost: float = 0.0
    heap_cost: float = 0.0
    counters: CostCounters = field(default_factory=CostCounters)
    _muted: bool = False
    _scoped: threading.local = field(default_factory=threading.local,
                                     init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Thread-scoped delegation
    # ------------------------------------------------------------------
    def _active(self) -> "CostModel":
        """The model charges on this thread should land on."""
        model = getattr(self._scoped, "model", None)
        return self if model is None else model

    @contextmanager
    def scoped(self, model: "CostModel") -> Iterator["CostModel"]:
        """Route this model's traffic on the current thread to *model*.

        Every charging primitive, ``muted()`` block and meter read that
        the current thread performs through ``self`` while inside the
        block is served by *model* instead.  Other threads are
        unaffected.  Scopes nest; the previous routing is restored on
        exit.
        """
        previous = getattr(self._scoped, "model", None)
        self._scoped.model = model if model is not self else None
        try:
            yield model
        finally:
            self._scoped.model = previous

    # ------------------------------------------------------------------
    # Muting (index construction is not part of query evaluation time)
    # ------------------------------------------------------------------
    @contextmanager
    def muted(self) -> Iterator["CostModel"]:
        """Suspend all charging within the block (nested blocks fine)."""
        target = self._active()
        if target is not self:
            with target.muted():
                yield target
            return
        previous = self._muted
        self._muted = True
        try:
            yield self
        finally:
            self._muted = previous

    # ------------------------------------------------------------------
    # Charging primitives
    # ------------------------------------------------------------------
    def seek(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.seek(count)
        if self._muted:
            return
        self.counters.seeks += count
        self.base_cost += self.charge.SEEK * count

    def page_read(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.page_read(count)
        if self._muted:
            return
        self.counters.page_reads += count
        self.base_cost += self.charge.PAGE_READ * count

    def page_hit(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.page_hit(count)
        if self._muted:
            return
        self.counters.page_hits += count
        self.base_cost += self.charge.PAGE_HIT * count

    def tuple_read(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.tuple_read(count)
        if self._muted:
            return
        self.counters.tuples_read += count
        self.base_cost += self.charge.TUPLE_READ * count

    def tuple_write(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.tuple_write(count)
        if self._muted:
            return
        self.counters.tuples_written += count
        self.base_cost += self.charge.TUPLE_WRITE * count

    def compare(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.compare(count)
        if self._muted:
            return
        self.counters.comparisons += count
        self.base_cost += self.charge.COMPARE * count

    def score_combine(self, count: int = 1) -> None:
        target = self._active()
        if target is not self:
            return target.score_combine(count)
        if self._muted:
            return
        self.counters.score_combines += count
        self.base_cost += self.charge.SCORE_COMBINE * count

    def block_read(self, count: int = 1, factor: float = 1.0) -> None:
        """Charge fetching *count* compressed blocks from storage.

        ``factor`` scales the charge for the active storage backend's
        access pattern (a sqlite row fetch pays SQL overhead, an mmap
        fault is cheaper than a buffered read).  It multiplies the
        configured ``BLOCK_READ`` constant, so a free cost model stays
        free under every backend.
        """
        target = self._active()
        if target is not self:
            return target.block_read(count, factor)
        if self._muted:
            return
        self.counters.blocks_read += count
        self.base_cost += self.charge.BLOCK_READ * factor * count

    def block_decompress(self, count: int = 1) -> None:
        """Charge inflating *count* compressed blocks before decode."""
        target = self._active()
        if target is not self:
            return target.block_decompress(count)
        if self._muted:
            return
        self.counters.blocks_decompressed += count
        self.base_cost += self.charge.BLOCK_DECOMPRESS * count

    def block_decode(self, entries: int) -> None:
        """Charge decompressing one block holding *entries* entries."""
        target = self._active()
        if target is not self:
            return target.block_decode(entries)
        if self._muted:
            return
        self.counters.blocks_decoded += 1
        self.counters.entries_decoded += entries
        self.base_cost += (self.charge.BLOCK_DECODE
                           + self.charge.ENTRY_DECODE * entries)

    def block_skip(self, count: int = 1) -> None:
        """Record *count* blocks pruned via their resident headers.

        Skipping is the free path — the skip directory is in memory, so
        no cost accrues; the counter makes the §3.3 skip economics
        observable in telemetry.
        """
        target = self._active()
        if target is not self:
            return target.block_skip(count)
        if self._muted:
            return
        self.counters.blocks_skipped += count

    def sort(self, n: int) -> None:
        """Charge an ``n log n`` comparison sort of *n* elements."""
        target = self._active()
        if target is not self:
            return target.sort(n)
        if self._muted or n <= 1:
            return
        self.counters.sort_elements += n
        self.base_cost += self.charge.SORT_STEP * n * math.log2(n)

    def heap_insert(self, heap_size: int) -> None:
        """Charge one heap insert (amortized O(1): sift-up on random input
        touches a constant number of levels in expectation)."""
        target = self._active()
        if target is not self:
            return target.heap_insert(heap_size)
        if self._muted:
            return
        self.counters.heap_inserts += 1
        self.heap_cost += self.charge.HEAP_STEP

    def heap_remove(self, heap_size: int) -> None:
        """Charge one heap removal when the heap holds *heap_size* live
        entries (sift-down is a true O(log size) walk)."""
        target = self._active()
        if target is not self:
            return target.heap_remove(heap_size)
        if self._muted:
            return
        self.counters.heap_removes += 1
        self.heap_cost += self.charge.HEAP_STEP * (1.0 + math.log2(heap_size + 2))

    # ------------------------------------------------------------------
    # Reading the meters
    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> float:
        """Simulated cost including heap maintenance (paper: TA)."""
        target = self._active()
        if target is not self:
            return target.total_cost
        return self.base_cost + self.heap_cost

    @property
    def ideal_cost(self) -> float:
        """Simulated cost with heap maintenance suppressed (paper: ITA)."""
        target = self._active()
        if target is not self:
            return target.ideal_cost
        return self.base_cost

    def snapshot(self) -> "CostSnapshot":
        """Capture the current meters, for differential measurements."""
        target = self._active()
        if target is not self:
            return target.snapshot()
        return CostSnapshot(self.base_cost, self.heap_cost,
                            self.counters.blocks_read,
                            self.counters.blocks_decoded,
                            self.counters.blocks_skipped,
                            self.counters.entries_decoded,
                            self.counters.blocks_decompressed)

    def since(self, snap: "CostSnapshot") -> "CostSnapshot":
        """Return the cost accumulated since *snap* was taken."""
        target = self._active()
        if target is not self:
            return target.since(snap)
        return CostSnapshot(
            self.base_cost - snap.base_cost,
            self.heap_cost - snap.heap_cost,
            self.counters.blocks_read - snap.blocks_read,
            self.counters.blocks_decoded - snap.blocks_decoded,
            self.counters.blocks_skipped - snap.blocks_skipped,
            self.counters.entries_decoded - snap.entries_decoded,
            self.counters.blocks_decompressed - snap.blocks_decompressed,
        )

    def reset(self) -> None:
        target = self._active()
        if target is not self:
            return target.reset()
        self.base_cost = 0.0
        self.heap_cost = 0.0
        self.counters = CostCounters()


@dataclass(frozen=True)
class CostSnapshot:
    """An immutable pair of meter readings."""

    base_cost: float
    heap_cost: float
    blocks_read: int = 0
    blocks_decoded: int = 0
    blocks_skipped: int = 0
    entries_decoded: int = 0
    blocks_decompressed: int = 0

    @property
    def total_cost(self) -> float:
        return self.base_cost + self.heap_cost

    @property
    def ideal_cost(self) -> float:
        return self.base_cost


#: A process-wide cost model used when callers do not supply their own.
GLOBAL_COST_MODEL = CostModel()


def free_cost_model() -> CostModel:
    """Return a cost model whose charges are all zero.

    Index construction and other setup work is routed through one of
    these so that only query evaluation is metered.
    """

    class _FreeCharge(Charge):
        SEEK = 0.0
        PAGE_READ = 0.0
        PAGE_HIT = 0.0
        TUPLE_READ = 0.0
        TUPLE_WRITE = 0.0
        COMPARE = 0.0
        SORT_STEP = 0.0
        HEAP_STEP = 0.0
        SCORE_COMBINE = 0.0
        BLOCK_READ = 0.0
        BLOCK_DECODE = 0.0
        ENTRY_DECODE = 0.0
        BLOCK_DECOMPRESS = 0.0

    return CostModel(charge=_FreeCharge)
