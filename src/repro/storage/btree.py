"""A B+-tree ordered key–value store.

This is the reproduction's stand-in for the BerkeleyDB B-tree tables the
paper stores its indexes in.  It supports the access paths TReX needs:

* point lookups (``get``),
* ordered insertion (``put``) and deletion (``delete``) with node
  splitting, borrowing and merging,
* cursor positioning at the smallest key ``>=`` a probe key (``seek``),
  which is how iterators such as ``nextElementAfter`` from the paper's
  ERA algorithm are implemented, and
* forward sequential scans along the chained leaf level.

Keys may be any mutually comparable Python values; in practice the table
layer uses tuples, whose lexicographic ordering matches the paper's
composite primary keys.  Every node visit is routed through a
:class:`~repro.storage.pager.PageCache` so that the active cost model
observes realistic page traffic, and every cursor positioning charges a
seek.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import StorageError
from .cost import CostModel, GLOBAL_COST_MODEL
from .pager import PageCache, PageIdAllocator

__all__ = ["BPlusTree", "Cursor"]


class _Node:
    """Internal or leaf node; ``children`` is unused in leaves."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf", "prev_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.values: list[Any] = []          # leaves only
        self.children: list[_Node] = []      # internal only
        self.next_leaf: _Node | None = None  # leaves only
        self.prev_leaf: _Node | None = None  # leaves only


def _chunk_sizes(total: int, maximum: int, minimum: int) -> list[int]:
    """Partition *total* into chunks of at most *maximum*, each at least
    *minimum* except when a single chunk holds everything.

    Targets ~2/3 occupancy (the usual bulk-load fill factor) and fixes
    up the tail by redistributing the last two chunks.
    """
    if total <= maximum:
        return [total] if total else []
    target = max(minimum, (2 * maximum) // 3)
    sizes = []
    remaining = total
    while remaining > 0:
        sizes.append(min(target, remaining))
        remaining -= sizes[-1]
    if len(sizes) > 1 and sizes[-1] < minimum:
        combined = sizes.pop() + sizes.pop()
        if combined <= maximum:
            sizes.append(combined)
        else:
            # combined > maximum >= 2*minimum - 1, so both halves are
            # at least `minimum`.
            sizes.extend([combined - combined // 2, combined // 2])
    return sizes


def _bisect_right(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_left(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """An in-memory B+-tree with simulated paging.

    Parameters
    ----------
    order:
        Maximum number of keys per node; nodes split when they exceed
        it.  Minimum occupancy for non-root nodes is ``order // 2``.
    cache:
        Page cache used to meter node accesses.  When omitted, a private
        cache charging the global cost model is created.
    """

    def __init__(self, order: int = 64, cache: PageCache | None = None,
                 cost_model: CostModel | None = None) -> None:
        if order < 4:
            raise StorageError("B+-tree order must be at least 4")
        self.order = order
        self._cost_model = cost_model if cost_model is not None else GLOBAL_COST_MODEL
        self._cache = cache if cache is not None else PageCache(cost_model=self._cost_model)
        self._pages = PageIdAllocator()
        self._root: _Node = self._new_node(is_leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _new_node(self, is_leaf: bool) -> _Node:
        return _Node(self._pages.allocate(), is_leaf)

    @property
    def cache(self) -> PageCache:
        return self._cache

    def use_cache(self, cache: PageCache) -> None:
        """Route subsequent node accesses through *cache* (e.g. to share
        one buffer pool across several trees, as BerkeleyDB does)."""
        self._cache = cache

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    @property
    def page_count(self) -> int:
        return self._pages.allocated

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, items: list[tuple[Any, Any]]) -> None:
        """Replace the tree's contents with *items* (must be sorted by
        key, without duplicates), building the tree bottom-up.

        This is the classic index-build fast path: leaves are packed to
        ~⅔ occupancy and parent levels assembled level by level, with
        no per-key descents.  Charges one tuple write per item.
        """
        for (a, _), (b, _) in zip(items, items[1:]):
            if not a < b:
                raise StorageError("bulk_load requires strictly sorted keys")
        self._cost_model.tuple_write(len(items))
        self._root = self._new_node(is_leaf=True)
        self._size = len(items)
        self._height = 1
        if not items:
            return

        # Leaf level: chunks of keys, each >= min occupancy (except a
        # lone root leaf), rebalancing the tail pair when needed.
        leaf_sizes = _chunk_sizes(len(items), self.order,
                                  minimum=self._min_keys())
        leaves: list[_Node] = []
        offset = 0
        for size in leaf_sizes:
            chunk = items[offset: offset + size]
            offset += size
            leaf = self._new_node(is_leaf=True)
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
                leaf.prev_leaf = leaves[-1]
            leaves.append(leaf)

        level: list[_Node] = leaves
        while len(level) > 1:
            # Internal level: a node with c children holds c-1 keys, so
            # the child-group minimum is min_keys + 1 (max order + 1).
            group_sizes = _chunk_sizes(len(level), self.order + 1,
                                       minimum=self._min_keys() + 1)
            parents: list[_Node] = []
            offset = 0
            for size in group_sizes:
                group = level[offset: offset + size]
                offset += size
                parent = self._new_node(is_leaf=False)
                parent.children = group
                parent.keys = [self._smallest_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
            self._height += 1
        self._root = level[0]

    @staticmethod
    def _smallest_key(node: _Node) -> Any:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _descend(self, key: Any, *, charge: bool = True) -> _Node:
        """Walk from the root to the leaf that owns *key*."""
        node = self._root
        while True:
            if charge:
                self._cache.touch(node.page_id)
            if node.is_leaf:
                return node
            node = node.children[_bisect_right(node.keys, key)]

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup; charges one seek plus the page path."""
        self._cost_model.seek()
        leaf = self._descend(key)
        idx = _bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and not (key < leaf.keys[idx]):
            self._cost_model.tuple_read()
            return leaf.values[idx]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any) -> None:
        """Insert or overwrite *key*; charges one tuple write."""
        self._cost_model.tuple_write()
        root = self._root
        split = self._insert(root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: _Node, key: Any, value: Any) -> tuple[Any, _Node] | None:
        self._cache.touch(node.page_id)
        if node.is_leaf:
            idx = _bisect_left(node.keys, key)
            if idx < len(node.keys) and not (key < node.keys[idx]):
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = _bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = right
        right.prev_leaf = node
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep_key, right

    # ------------------------------------------------------------------
    # Deletion (with borrow/merge rebalancing)
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> bool:
        """Remove *key*; return True if it was present."""
        removed = self._delete(self._root, key)
        root = self._root
        if not root.is_leaf and len(root.children) == 1:
            self._cache.invalidate(root.page_id)
            self._root = root.children[0]
            self._height -= 1
        return removed

    def _min_keys(self) -> int:
        return self.order // 2

    def _delete(self, node: _Node, key: Any) -> bool:
        self._cache.touch(node.page_id)
        if node.is_leaf:
            idx = _bisect_left(node.keys, key)
            if idx >= len(node.keys) or key < node.keys[idx]:
                return False
            node.keys.pop(idx)
            node.values.pop(idx)
            self._size -= 1
            return True
        idx = _bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key)
        if removed and self._underflowed(child):
            self._rebalance(node, idx)
        return removed

    def _underflowed(self, node: _Node) -> bool:
        if node is self._root:
            return False
        return len(node.keys) < self._min_keys()

    def _rebalance(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if left is not None and len(left.keys) > self._min_keys():
            self._borrow_from_left(parent, idx, left, child)
        elif right is not None and len(right.keys) > self._min_keys():
            self._borrow_from_right(parent, idx, child, right)
        elif left is not None:
            self._merge(parent, idx - 1, left, child)
        elif right is not None:
            self._merge(parent, idx, child, right)

    def _borrow_from_left(self, parent: _Node, idx: int, left: _Node, child: _Node) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Node, idx: int, child: _Node, right: _Node) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Node, sep_idx: int, left: _Node, right: _Node) -> None:
        """Fold *right* into *left*; *sep_idx* separates them in *parent*."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
            if right.next_leaf is not None:
                right.next_leaf.prev_leaf = left
        else:
            left.keys.append(parent.keys[sep_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(sep_idx)
        parent.children.pop(sep_idx + 1)
        self._cache.invalidate(right.page_id)

    # ------------------------------------------------------------------
    # Cursors and scans
    # ------------------------------------------------------------------
    def seek(self, key: Any) -> "Cursor":
        """Position a cursor at the smallest key ``>=`` *key*."""
        self._cost_model.seek()
        leaf = self._descend(key)
        idx = _bisect_left(leaf.keys, key)
        cursor = Cursor(self, leaf, idx)
        cursor._skip_exhausted_leaf()
        return cursor

    def first(self) -> "Cursor":
        """Position a cursor at the smallest key in the tree."""
        self._cost_model.seek()
        node = self._root
        while True:
            self._cache.touch(node.page_id)
            if node.is_leaf:
                break
            node = node.children[0]
        cursor = Cursor(self, node, 0)
        cursor._skip_exhausted_leaf()
        return cursor

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield every (key, value) pair in key order."""
        cursor = self.first()
        while cursor.valid:
            yield cursor.key, cursor.value
            cursor.advance()

    def range(self, low: Any, high: Any, *, include_high: bool = False) -> Iterator[tuple[Any, Any]]:
        """Yield pairs with ``low <= key < high`` (or ``<=`` when asked)."""
        cursor = self.seek(low)
        while cursor.valid:
            key = cursor.key
            if key > high or (key == high and not include_high):
                return
            yield key, cursor.value
            cursor.advance()

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def check_invariants(self) -> None:
        """Validate structural invariants; raises StorageError on failure.

        Used by tests (including property-based ones) after random
        sequences of inserts and deletes.
        """
        leaf_keys: list[Any] = []
        self._check_node(self._root, None, None, self._height, leaf_keys)
        for a, b in zip(leaf_keys, leaf_keys[1:]):
            if not a < b:
                raise StorageError(f"leaf keys out of order: {a!r} !< {b!r}")
        if len(leaf_keys) != self._size:
            raise StorageError(f"size mismatch: counted {len(leaf_keys)}, recorded {self._size}")
        # leaf chain must visit exactly the same keys
        chained: list[Any] = []
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            chained.extend(node.keys)
            node = node.next_leaf
        if chained != leaf_keys:
            raise StorageError("leaf chain disagrees with tree traversal")

    def _check_node(self, node: _Node, low: Any, high: Any, depth: int,
                    leaf_keys: list[Any]) -> None:
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError(f"key {key!r} below lower bound {low!r}")
            if high is not None and not (key < high):
                raise StorageError(f"key {key!r} not below upper bound {high!r}")
        if node is not self._root and len(node.keys) < self._min_keys() and depth > 0:
            raise StorageError(f"node underflow: {len(node.keys)} keys")
        if node.is_leaf:
            if depth != 1:
                raise StorageError("leaves at unequal depth")
            leaf_keys.extend(node.keys)
            return
        if len(node.children) != len(node.keys) + 1:
            raise StorageError("internal fanout mismatch")
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1], depth - 1, leaf_keys)


class Cursor:
    """A forward cursor over a :class:`BPlusTree` leaf chain."""

    __slots__ = ("_tree", "_leaf", "_idx")

    def __init__(self, tree: BPlusTree, leaf: _Node, idx: int) -> None:
        self._tree = tree
        self._leaf: _Node | None = leaf
        self._idx = idx

    def _skip_exhausted_leaf(self) -> None:
        while self._leaf is not None and self._idx >= len(self._leaf.keys):
            self._leaf = self._leaf.next_leaf
            self._idx = 0
            if self._leaf is not None:
                self._tree.cache.touch(self._leaf.page_id)

    @property
    def valid(self) -> bool:
        return self._leaf is not None

    @property
    def key(self) -> Any:
        if self._leaf is None:
            raise StorageError("cursor is exhausted")
        return self._leaf.keys[self._idx]

    @property
    def value(self) -> Any:
        if self._leaf is None:
            raise StorageError("cursor is exhausted")
        self._tree.cost_model.tuple_read()
        return self._leaf.values[self._idx]

    def advance(self) -> None:
        """Move to the next key in order; cursor may become invalid."""
        if self._leaf is None:
            raise StorageError("cannot advance an exhausted cursor")
        self._idx += 1
        self._skip_exhausted_leaf()
