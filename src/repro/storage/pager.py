"""Page cache simulation for the storage engine.

The B+-tree in :mod:`repro.storage.btree` keeps its nodes as Python
objects, but every *access* to a node is routed through a
:class:`PageCache`, which simulates a fixed-capacity LRU buffer pool in
front of disk-resident pages.  A node access that misses the cache is
charged as a page read against the active :class:`~repro.storage.cost.
CostModel`; a hit is charged the (much cheaper) cache-hit cost.

This gives the reproduction the property that matters for the paper's
experiments: scanning a long posting list costs proportionally to its
length in pages, re-visiting a hot index root is nearly free, and random
probes into a large table keep missing.
"""

from __future__ import annotations

from collections import OrderedDict

from .cost import CostModel, GLOBAL_COST_MODEL


class PageCache:
    """An LRU cache over opaque page identifiers.

    The cache does not hold page *contents* (nodes stay reachable as
    Python objects); it tracks which page ids would be resident in a
    buffer pool of ``capacity`` pages, and charges the cost model
    accordingly on every touch.
    """

    def __init__(self, capacity: int = 4096, cost_model: CostModel | None = None) -> None:
        if capacity < 1:
            raise ValueError("page cache capacity must be >= 1")
        self.capacity = capacity
        self.cost_model = cost_model if cost_model is not None else GLOBAL_COST_MODEL
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def touch(self, page_id: int) -> bool:
        """Record an access to *page_id*; return True on a cache hit."""
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.hits += 1
            self.cost_model.page_hit()
            return True
        self.misses += 1
        self.cost_model.page_read()
        self._resident[page_id] = None
        if len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def touch_block(self, page_id: int, factor: float = 1.0) -> bool:
        """Record an access to a compressed block; True on a cache hit.

        Same LRU bookkeeping as :meth:`touch`, but a miss is charged as
        a ``block_read`` — blocks are packed back to back, so a cold
        fetch is a short sequential read, not a full page fault.
        ``factor`` scales the miss charge for the storage backend the
        block lives in (see :class:`repro.backend.CostProfile`); hits
        cost the same everywhere — residency is residency.
        """
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.hits += 1
            self.cost_model.page_hit()
            return True
        self.misses += 1
        self.cost_model.block_read(factor=factor)
        self._resident[page_id] = None
        if len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate(self, page_id: int) -> None:
        """Drop *page_id* from the cache (page was freed or rewritten)."""
        self._resident.pop(page_id, None)

    def clear(self) -> None:
        self._resident.clear()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._resident

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageIdAllocator:
    """Hands out monotonically increasing page identifiers."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        page_id = self._next
        self._next += 1
        return page_id

    @property
    def allocated(self) -> int:
        return self._next
