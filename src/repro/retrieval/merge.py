"""Merge — positional merging of ERPLs (paper Figure 3).

Merge evaluates a retrieval task using the position-ordered ERPLs: one
iterator per query term (restricted to the query's sids), advanced in
lockstep by minimal element position.  When several terms' iterators
sit on the same element, their scores are summed; the accumulated
result list is sorted by score at the end ("sort V using QuickSort").

Merge reads *only* the (term, sid) ranges the query needs — seeking
straight to them thanks to the sid-major ERPL key — which is why it
beats TA whenever TA ends up scanning (and skipping through) wide
relevance-ordered lists (paper §5.2).
"""

from __future__ import annotations

from ..corpus.document import M_POS
from ..index.catalog import IndexCatalog, IndexSegment
from ..scoring.combine import ScoredHit
from ..storage.cost import CostModel
from .iterators import ErplIterator
from .result import EvaluationStats

__all__ = ["merge_retrieve"]


def merge_retrieve(catalog: IndexCatalog,
                   segments: dict[str, IndexSegment],
                   sids: frozenset[int] | set[int],
                   cost_model: CostModel,
                   term_weights: dict[str, float] | None = None,
                   ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Run the Merge algorithm of Figure 3.

    Parameters
    ----------
    segments:
        For each query term, the ERPL segment to read (resolved by the
        caller through the catalog).
    sids:
        The query's sid set; only these ranges are read.
    """
    snapshot = cost_model.snapshot()
    iterators = [ErplIterator(catalog, segment, sids)
                 for segment in segments.values()]
    weights = {iterator.term: (1.0 if term_weights is None
                               else term_weights.get(iterator.term, 1.0))
               for iterator in iterators}

    hits: list[ScoredHit] = []
    while True:
        live = [it for it in iterators if not it.exhausted]
        if not live:
            break
        # line 7: the minimal position among the current elements
        position = min(it.current_position for it in live)
        holders = [it for it in live if it.current_position == position]
        if len(holders) == 1:
            # Galloping batch: while one iterator alone holds the
            # minimum, every entry strictly below the runner-up's
            # position is its own single-term result — take the whole
            # run from the decoded block in one call.  Per emitted
            # entry this is one Figure-3 loop iteration, so the charge
            # is the same len(live)-way minimum comparison plus one
            # score combination each.
            holder = holders[0]
            bound = M_POS
            for iterator in live:
                if iterator is not holder and iterator.current_position < bound:
                    bound = iterator.current_position
            run = holder.take_until(bound)
            cost_model.compare(len(live) * len(run))
            cost_model.score_combine(len(run))
            weight = weights[holder.term]
            for entry in run:
                score = weight * entry.score  # line 12
                if score > 0.0:
                    hits.append(ScoredHit(score=score, docid=entry.docid,
                                          end_pos=entry.endpos, sid=entry.sid,
                                          length=entry.length))  # line 20
            continue
        cost_model.compare(len(live))
        score = 0.0
        spec = None
        for iterator in holders:
            entry = iterator.current
            score += weights[iterator.term] * entry.score  # line 12
            cost_model.score_combine()
            spec = entry
            iterator.advance()  # lines 13-17
        if spec is not None and score > 0.0:
            hits.append(ScoredHit(score=score, docid=spec.docid,
                                  end_pos=spec.endpos, sid=spec.sid,
                                  length=spec.length))  # line 20

    # line 22: sort V using QuickSort
    cost_model.sort(len(hits))
    hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="merge", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(hits))
    stats.record_block_io(spent)
    for iterator in iterators:
        stats.list_depths[iterator.term] = iterator.rows_read
        stats.list_lengths[iterator.term] = iterator.rows_read
    return hits, stats
