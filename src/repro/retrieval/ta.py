"""TA — the threshold algorithm over RPLs (paper §3.3).

TReX implements TA "in a version similar to the implementation that has
been used in TopX": batched sorted access over the per-term relevance-
ordered lists, candidate bookkeeping with worst/best score bounds, a
top-k heap, and a threshold-based stopping condition.  Entries whose
sid is not among the query's sids are skipped — but skipped rows are
still read, which is what makes TA pay dearly on wide-scope RPLs.

Heap management follows the paper's observed discipline (§5.2): every
candidate update is pushed and the minimum evicted once the heap
exceeds ``k``, so the number of removals is roughly ``inserts - k`` —
large for small ``k``, vanishing as ``k`` approaches the answer count.
All heap work is charged to the cost model's separate heap meter, so a
single run reports both the TA cost (with heap) and the ITA cost (the
paper's ideal-heap variant, measured by pausing the clock during heap
operations).

The stopping condition is the sound bounded variant (no random
accesses are assumed): stop once (a) the k-th worst score reaches the
threshold ``Σ_j w_j · high_j``, (b) no pending candidate's best score
can overtake it, and (c) every member of the current top-k is fully
resolved, so reported scores equal the true aggregate scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..index.catalog import IndexCatalog, IndexSegment
from ..scoring.combine import ScoredHit
from ..storage.cost import CostModel
from .heap import TopKHeap
from .iterators import RplIterator
from .result import EvaluationStats

__all__ = ["ta_retrieve", "DEFAULT_BATCH_SIZE"]

#: Sorted accesses between evaluations of the stopping condition
#: (TopX-style batching; checking every row would itself dominate).
DEFAULT_BATCH_SIZE = 32


@dataclass
class _Candidate:
    worst: float = 0.0
    seen: set[str] = field(default_factory=set)
    sid: int = 0
    length: int = 0


def ta_retrieve(catalog: IndexCatalog,
                segments: dict[str, IndexSegment],
                sids: frozenset[int] | set[int],
                k: int,
                cost_model: CostModel,
                term_weights: dict[str, float] | None = None,
                batch_size: int = DEFAULT_BATCH_SIZE,
                ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Run the threshold algorithm for the top-*k* elements.

    Parameters
    ----------
    segments:
        For each query term, the RPL segment to perform sorted access
        on (resolved by the caller through the catalog).
    """
    if k < 1:
        raise ValueError("TA requires k >= 1")
    weights = {term: 1.0 for term in segments}
    if term_weights:
        weights.update({t: w for t, w in term_weights.items() if t in weights})

    snapshot = cost_model.snapshot()
    iterators = {term: RplIterator(catalog, segment, sids)
                 for term, segment in segments.items()}
    candidates: dict[tuple[int, int], _Candidate] = {}
    heap = TopKHeap(k, cost_model)
    early_stop = False
    accesses_since_check = 0

    def threshold() -> float:
        return sum(weights[t] * it.upper_bound for t, it in iterators.items())

    def best_of(candidate: _Candidate) -> float:
        bonus = sum(weights[t] * iterators[t].upper_bound
                    for t in iterators if t not in candidate.seen)
        return candidate.worst + bonus

    def should_stop() -> bool:
        if len(heap) < min(k, max(len(candidates), 1)):
            return False
        floor = heap.min_score()
        if floor == float("-inf"):
            return False
        current_threshold = threshold()
        cost_model.compare()
        if floor < current_threshold:
            return False
        in_heap = heap.keys()
        # (b) no pending candidate can overtake; (c) top-k fully resolved.
        for key, candidate in candidates.items():
            cost_model.compare()
            best = best_of(candidate)
            if key in in_heap:
                if best > candidate.worst + 1e-12:
                    return False  # unresolved top-k member
            elif best > floor + 1e-12:
                return False
        return True

    while True:
        progressed = False
        for term, iterator in iterators.items():
            if iterator.exhausted:
                continue
            entry = iterator.next_entry()
            if entry is None:
                continue
            progressed = True
            key = entry.element_key()
            candidate = candidates.get(key)
            if candidate is None:
                candidate = candidates[key] = _Candidate(sid=entry.sid,
                                                         length=entry.length)
            candidate.worst += weights[term] * entry.score
            candidate.seen.add(term)
            cost_model.score_combine()
            heap.offer(candidate.worst, key)
            accesses_since_check += 1

        if not progressed:
            break  # every list exhausted: exact answer by construction
        if accesses_since_check >= batch_size:
            accesses_since_check = 0
            if should_stop():
                early_stop = True
                break

    if early_stop:
        # Block-max pruning: the stop rule already proved no unread
        # entry can matter, so every undecoded tail block is skipped
        # outright — the skip directory made them free.
        for iterator in iterators.values():
            iterator.skip_until_score_below(float("inf"))

    hits = [ScoredHit(score=score, docid=key[0], end_pos=key[1],
                      sid=candidates[key].sid, length=candidates[key].length)
            for score, key in heap.items()]
    hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="ta", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(candidates),
                            early_stop=early_stop)
    stats.record_block_io(spent)
    for term, iterator in iterators.items():
        stats.list_depths[term] = iterator.depth
        stats.list_lengths[term] = iterator.length
        stats.rows_skipped += iterator.skipped
    return hits, stats
