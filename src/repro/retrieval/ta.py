"""TA — the threshold algorithm over RPLs (paper §3.3).

TReX implements TA "in a version similar to the implementation that has
been used in TopX": batched sorted access over the per-term relevance-
ordered lists, candidate bookkeeping with worst/best score bounds, a
top-k heap, and a threshold-based stopping condition.  Entries whose
sid is not among the query's sids are skipped — but skipped rows are
still read, which is what makes TA pay dearly on wide-scope RPLs.

Heap management follows the paper's observed discipline (§5.2): every
candidate update is pushed and the minimum evicted once the heap
exceeds ``k``, so the number of removals is roughly ``inserts - k`` —
large for small ``k``, vanishing as ``k`` approaches the answer count.
All heap work is charged to the cost model's separate heap meter, so a
single run reports both the TA cost (with heap) and the ITA cost (the
paper's ideal-heap variant, measured by pausing the clock during heap
operations).

The stopping condition is the sound bounded variant (no random
accesses are assumed): stop once (a) the k-th worst score reaches the
threshold ``Σ_j w_j · high_j``, (b) no pending candidate's best score
can overtake it, and (c) every member of the current top-k is fully
resolved, so reported scores equal the true aggregate scores.

The loop is packaged as a resumable :class:`TaSession` so a coordinator
can interleave several lists-in-progress: ``ta_retrieve`` simply runs
one session to completion, while the sharded scatter-gather engine
(:mod:`repro.shard.engine`) advances one session per shard batch by
batch and abandons a session once the global top-k floor dominates the
shard's remaining upper bound (distributed TA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..index.catalog import IndexCatalog, IndexSegment
from ..scoring.combine import ScoredHit
from ..storage.cost import CostModel
from .heap import TopKHeap
from .iterators import RplIterator
from .result import EvaluationStats

__all__ = ["TaSession", "ta_retrieve", "DEFAULT_BATCH_SIZE"]

#: Sorted accesses between evaluations of the stopping condition
#: (TopX-style batching; checking every row would itself dominate).
DEFAULT_BATCH_SIZE = 32


@dataclass
class _Candidate:
    worst: float = 0.0
    seen: set[str] = field(default_factory=set)
    sid: int = 0
    length: int = 0


class TaSession:
    """One TA run, advanced batch by batch.

    ``step()`` performs sorted accesses until the next stopping-condition
    check (one batch) and reports whether the session is still live.
    ``finalize()`` applies the tail block skips and returns the sorted
    hits.  A coordinator that decides the session can no longer matter
    calls ``prune()`` instead, which abandons the run and discards its
    candidates (the remaining blocks are counted as skipped).
    """

    def __init__(self,
                 catalog: IndexCatalog,
                 segments: dict[str, IndexSegment],
                 sids: frozenset[int] | set[int],
                 k: int,
                 cost_model: CostModel,
                 term_weights: dict[str, float] | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if k < 1:
            raise ValueError("TA requires k >= 1")
        self.k = k
        self.cost_model = cost_model
        self.batch_size = batch_size
        self.weights = {term: 1.0 for term in segments}
        if term_weights:
            self.weights.update({t: w for t, w in term_weights.items()
                                 if t in self.weights})
        self.iterators = {term: RplIterator(catalog, segment, sids)
                          for term, segment in segments.items()}
        self.candidates: dict[tuple[int, int], _Candidate] = {}
        self.heap = TopKHeap(k, cost_model)
        self.early_stop = False
        self.pruned = False
        self.finished = False
        self._accesses_since_check = 0

    # -- bounds ---------------------------------------------------------
    def threshold(self) -> float:
        """Σ_j w_j · high_j — bound on any element not yet seen."""
        return sum(self.weights[t] * it.upper_bound
                   for t, it in self.iterators.items())

    def best_of(self, candidate: _Candidate) -> float:
        bonus = sum(self.weights[t] * self.iterators[t].upper_bound
                    for t in self.iterators if t not in candidate.seen)
        return candidate.worst + bonus

    def upper_bound(self) -> float:
        """Bound on the final score of *any* element this session could
        still deliver: the unseen-element threshold or the best possible
        completion of a seen candidate, whichever is larger."""
        bound = self.threshold()
        for candidate in self.candidates.values():
            self.cost_model.compare()
            best = self.best_of(candidate)
            if best > bound:
                bound = best
        return bound

    def can_prune(self, floor: float) -> bool:
        """Sound early-termination test against a global *floor*.

        Equivalent to ``floor > self.upper_bound()`` but cheap on the
        common path: the static threshold ``Σ_j w_j · high_j`` comes
        straight from the resident block-max directories (before the
        first sorted access it is the list-head bound, i.e. the shard's
        static score upper bound), so while the floor has not cleared
        it no element — seen or unseen — can be ruled out and the
        per-candidate completion scan is skipped entirely.  Once the
        floor does clear the threshold, the scan early-exits on the
        first candidate whose best completion still reaches the floor.
        Strict comparisons throughout, so cross-shard ties survive.
        """
        if floor == float("-inf"):
            return False
        self.cost_model.compare()
        if floor <= self.threshold():
            return False
        for candidate in self.candidates.values():
            self.cost_model.compare()
            if self.best_of(candidate) >= floor:
                return False
        return True

    def _should_stop(self) -> bool:
        heap, candidates, k = self.heap, self.candidates, self.k
        if len(heap) < min(k, max(len(candidates), 1)):
            return False
        floor = heap.min_score()
        if floor == float("-inf"):
            return False
        current_threshold = self.threshold()
        self.cost_model.compare()
        if floor < current_threshold:
            return False
        in_heap = heap.keys()
        # (b) no pending candidate can overtake; (c) top-k fully resolved.
        for key, candidate in candidates.items():
            self.cost_model.compare()
            best = self.best_of(candidate)
            if key in in_heap:
                if best > candidate.worst + 1e-12:
                    return False  # unresolved top-k member
            elif best > floor + 1e-12:
                return False
        return True

    # -- advancement ----------------------------------------------------
    def step(self) -> bool:
        """Advance one batch; return False once the session has ended.

        Sorted accesses are fetched block-at-a-time through
        ``RplIterator.next_entries``: each live list contributes
        ``ceil(remaining / live)`` entries per fetch — exactly the
        per-list share the entry-at-a-time round-robin would consume
        before the next stopping-condition check — and the fetched
        batches are replayed in round-robin order, so candidate
        updates, heap traffic, and check boundaries are identical to
        the scalar loop (a list running dry mid-interval just shrinks
        the next fetch's divisor, as it shrank the scalar round).
        """
        if self.finished:
            return False
        while True:
            live = [(term, iterator)
                    for term, iterator in self.iterators.items()
                    if not iterator.exhausted]
            if not live:
                self.finished = True
                return False  # every list exhausted: exact by construction
            need = self.batch_size - self._accesses_since_check
            rounds = -(-need // len(live))  # ceil
            batches = [(term, iterator.next_entries(rounds))
                       for term, iterator in live]
            progressed = False
            for round_index in range(rounds):
                for term, entries in batches:
                    if round_index >= len(entries):
                        continue
                    entry = entries[round_index]
                    progressed = True
                    key = entry.element_key()
                    candidate = self.candidates.get(key)
                    if candidate is None:
                        candidate = self.candidates[key] = _Candidate(
                            sid=entry.sid, length=entry.length)
                    candidate.worst += self.weights[term] * entry.score
                    candidate.seen.add(term)
                    self.cost_model.score_combine()
                    self.heap.offer(candidate.worst, key)
                    self._accesses_since_check += 1

            if not progressed:
                self.finished = True
                return False  # every list exhausted: exact by construction
            if self._accesses_since_check >= self.batch_size:
                self._accesses_since_check = 0
                if self._should_stop():
                    self.early_stop = True
                    self.finished = True
                    return False
                return True

    def run(self) -> None:
        while self.step():
            pass

    def prune(self) -> None:
        """Abandon the session: its results can no longer reach the
        global top-k, so skip every undecoded tail block and discard
        the candidate set."""
        self.pruned = True
        self.finished = True
        for iterator in self.iterators.values():
            iterator.skip_until_score_below(float("inf"))

    # -- results --------------------------------------------------------
    def finalize(self) -> list[ScoredHit]:
        if self.early_stop:
            # Block-max pruning: the stop rule already proved no unread
            # entry can matter, so every undecoded tail block is skipped
            # outright — the skip directory made them free.
            for iterator in self.iterators.values():
                iterator.skip_until_score_below(float("inf"))
        hits = [ScoredHit(score=score, docid=key[0], end_pos=key[1],
                          sid=self.candidates[key].sid,
                          length=self.candidates[key].length)
                for score, key in self.heap.items()]
        hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))
        return hits

    def stats_into(self, stats: EvaluationStats) -> None:
        """Accumulate per-list depth/length/skip counters into *stats*."""
        for term, iterator in self.iterators.items():
            stats.list_depths[term] = (stats.list_depths.get(term, 0)
                                       + iterator.depth)
            stats.list_lengths[term] = (stats.list_lengths.get(term, 0)
                                        + iterator.length)
            stats.rows_skipped += iterator.skipped


def ta_retrieve(catalog: IndexCatalog,
                segments: dict[str, IndexSegment],
                sids: frozenset[int] | set[int],
                k: int,
                cost_model: CostModel,
                term_weights: dict[str, float] | None = None,
                batch_size: int = DEFAULT_BATCH_SIZE,
                ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Run the threshold algorithm for the top-*k* elements.

    Parameters
    ----------
    segments:
        For each query term, the RPL segment to perform sorted access
        on (resolved by the caller through the catalog).
    """
    snapshot = cost_model.snapshot()
    session = TaSession(catalog, segments, sids, k, cost_model,
                        term_weights, batch_size)
    session.run()
    hits = session.finalize()

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="ta", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(session.candidates),
                            early_stop=session.early_stop)
    stats.record_block_io(spent)
    session.stats_into(stats)
    return hits, stats
