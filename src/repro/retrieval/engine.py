"""TReX engine: builds the indexes and evaluates NEXI queries.

The engine owns everything an instance of TReX owns in the paper: the
collection, a structural summary, the Elements and PostingLists tables,
the catalog of materialized RPL/ERPL segments, a scorer, and a cost
model.  ``evaluate`` runs the two-phase scheme of §3.1 — translation
(each about path → sids + terms) and retrieval (one of ERA / TA / ITA /
Merge per clause) — then combines clause results into ranked target
elements.

Multi-clause semantics (the paper leaves ranking details open; we
follow common INEX practice and document the choice in DESIGN.md):

* the query's *target* elements are those matching the full path;
* an about clause attached to ``.`` of the last step scores targets
  directly; a clause with a relative path (``.//bdy``) scores
  descendants, which vote for their target-sid ancestors; predicates on
  earlier steps act as *support*: their scores are added, discounted by
  ``support_weight``, to contained targets, but do not filter;
* the last step's boolean predicate structure *is* enforced: an
  ``and`` requires every operand clause to be satisfied for the target.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import Callable

from .. import sanitizer
from ..build.batch import compute_document_entries, filter_scope
from ..build.executor import BuildExecutor, BuildReport
from ..build.planner import BuildPlan, BuildPlanner, BuildTarget
from ..corpus.alias import AliasMapping
from ..corpus.collection import Collection
from ..corpus.document import Document
from ..corpus.tokenizer import Tokenizer
from ..corpus.xmlparser import XMLParser
from ..errors import MissingIndexError, RetrievalError
from ..index.catalog import IndexCatalog, IndexSegment
from ..index.elements import BlockedElements, build_elements_table
from ..index.postings import (
    BlockedPostings,
    build_posting_lists_table,
    extend_posting_lists,
)
from ..index.rpl import RplEntry, compute_rpl_entries
from ..nexi.ast import (
    AboutClause,
    BooleanPredicate,
    ComparisonClause,
    NexiQuery,
    Predicate,
)
from ..nexi.parser import parse_nexi
from ..nexi.translate import (
    TranslatedClause,
    TranslatedComparison,
    TranslatedQuery,
    translate_query,
)
from ..scoring.combine import ScoredHit
from ..scoring.scorers import BM25Scorer, ElementScorer
from ..scoring.stats import ScoringStats
from ..storage.blocks import DEFAULT_BLOCK_SIZE
from ..storage.cost import CostModel
from ..storage.pager import PageCache
from ..summary.base import PartitionSummary
from ..summary.variants import IncomingSummary
from .era import era_retrieve
from .iterators import ExtentIterator
from .merge import merge_retrieve
from .race import race as race_strategies
from .result import EvaluationStats, ResultSet
from .ta import DEFAULT_BATCH_SIZE, ta_retrieve
from .wand import wand_retrieve

__all__ = ["TrexEngine", "METHODS"]

METHODS = ("era", "ta", "ita", "merge", "wand", "race", "auto")


class TrexEngine:
    """A fully materialized TReX instance over one collection."""

    def __init__(self, collection: Collection,
                 summary: PartitionSummary | None = None, *,
                 alias: AliasMapping | None = None,
                 scorer: ElementScorer | None = None,
                 tokenizer: Tokenizer | None = None,
                 cost_model: CostModel | None = None,
                 support_weight: float = 0.5,
                 auto_materialize: bool = True,
                 fragment_size: int = 64,
                 btree_order: int = 64,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 ta_batch_size: int = DEFAULT_BATCH_SIZE,
                 compaction_ratio: float = 0.5,
                 backend: str = "pager",
                 compression: str = "none") -> None:
        self.collection = collection
        self.cost_model = cost_model if cost_model is not None else CostModel()
        if summary is None:
            summary = IncomingSummary(
                collection, alias if alias is not None else AliasMapping.identity())
        self.summary = summary
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        if scorer is None:
            scorer = BM25Scorer(ScoringStats.from_collection(collection))
        self.scorer = scorer
        self.support_weight = support_weight
        self.auto_materialize = auto_materialize
        #: Sorted accesses between TA stopping-condition checks.
        self.ta_batch_size = ta_batch_size
        #: Delta-to-base size ratio at which :meth:`compact_segments`
        #: folds a segment's LSM delta runs into its base run.
        self.compaction_ratio = compaction_ratio
        #: Report of the most recent :meth:`build_plan` run (telemetry).
        self.last_build_report: BuildReport | None = None
        #: Per-segment delta rows appended by the most recent
        #: :meth:`add_document` — the payload a replica group ships to
        #: followers so their LSM runs stay byte-identical.
        self.last_ingest_deltas: list[tuple[int, tuple[RplEntry, ...]]] = []
        #: Monotonic data-version counter.  Bumped whenever the answers
        #: the engine would give can change (document ingestion, scorer
        #: rebuild, index reload) — result caches key their entries on
        #: it to detect staleness.
        self.epoch = 0

        self.block_size = block_size
        #: Storage backend for the catalog's persisted segments and the
        #: charge profile of cold block reads (see ``repro.backend``).
        self.backend = backend
        #: Default block-payload compression for newly built segments.
        self.compression = compression
        with self.cost_model.muted():
            self.elements = build_elements_table(
                collection, summary, cost_model=self.cost_model,
                btree_order=btree_order)
            self.postings = build_posting_lists_table(
                collection, cost_model=self.cost_model,
                fragment_size=fragment_size, btree_order=btree_order)
            self.catalog = IndexCatalog(cost_model=self.cost_model,
                                        btree_order=btree_order,
                                        block_size=block_size,
                                        backend=backend,
                                        compression=compression)
            # Block-compressed access paths over the base tables.  The
            # tables stay the ingestion-side source of truth; queries
            # read these block sequences (skip directory resident,
            # payloads decoded per block).
            self.blocked_elements = BlockedElements(
                self.elements, cost_model=self.cost_model,
                block_size=block_size)
            self.blocked_postings = BlockedPostings(
                self.postings, cost_model=self.cost_model)

    # ------------------------------------------------------------------
    # Materialization of redundant indexes
    # ------------------------------------------------------------------
    def materialize_rpl(self, term: str, sids: frozenset[int] | None = None,
                        compression: str | None = None) -> IndexSegment:
        """Materialize an RPL segment for *term* (universal when sids=None)."""
        with self.cost_model.muted():
            entries = compute_rpl_entries(self.collection, self.summary, term,
                                          self.scorer, sids=sids)
            return self.catalog.add_rpl_segment(term, entries, scope=sids,
                                                compression=compression)

    def materialize_erpl(self, term: str, sids: frozenset[int] | None = None,
                         compression: str | None = None) -> IndexSegment:
        """Materialize an ERPL segment for *term* (universal when sids=None)."""
        with self.cost_model.muted():
            entries = compute_rpl_entries(self.collection, self.summary, term,
                                          self.scorer, sids=sids)
            return self.catalog.add_erpl_segment(term, entries, scope=sids,
                                                 compression=compression)

    def plan_for_query(self, query: str | NexiQuery,
                       kinds: tuple[str, ...] = ("rpl", "erpl"), *,
                       scope: str = "universal") -> BuildPlan:
        """The deduplicated build plan covering the query's clauses.

        Repeated ``(term, sids)`` pairs across clauses collapse to one
        target (their cover sets merge), so the batched builder pays
        for each distinct segment once however many clauses want it.
        """
        if scope not in ("universal", "query", "flat"):
            raise RetrievalError(f"unknown materialization scope {scope!r}")
        translated = self.translate(query)
        planner = BuildPlanner()

        def request(term: str, sids: frozenset[int]) -> None:
            stored_scope = None if scope == "universal" else sids
            for kind in kinds:
                planner.add(kind, term, scope=stored_scope, cover=sids)

        if scope == "flat":
            flat_sids = translated.flat_sids()
            for term in translated.flat_term_weights():
                request(term, flat_sids)
        else:
            for clause in translated.clauses:
                for term in clause.terms:
                    request(term, clause.sids)
        return planner.plan()

    def materialize_for_query(self, query: str | NexiQuery,
                              kinds: tuple[str, ...] = ("rpl", "erpl"), *,
                              scope: str = "universal",
                              workers: int = 0) -> list[IndexSegment]:
        """Materialize every missing segment the query's clauses need.

        ``scope='universal'`` builds whole-term lists (shared across
        queries; TA reads and skips through them); ``scope='query'``
        builds lists restricted to each clause's sids; ``scope='flat'``
        builds lists restricted to the union of the query's sids — the
        redundant index a flat-mode evaluation of exactly this query
        reads without any skipping.

        All missing segments are built by one batched collection pass
        (optionally fanned over *workers* processes) instead of one
        ERA-style scan per term.
        """
        plan = self.plan_for_query(query, kinds, scope=scope)
        _report, installed = self.build_plan(plan, workers=workers)
        return installed

    def _target_satisfied(self, target: BuildTarget) -> bool:
        """Is a catalog segment already good enough for *target*?"""
        cover = target.cover if target.cover is not None else target.scope
        if cover is None:
            # A universal request with no cover set demands an actual
            # universal segment, not merely one covering some sids.
            return any(segment.scope is None and segment.term == target.term
                       for segment in self.catalog.segments(target.kind))
        return self.catalog.find_segment(target.kind, target.term,
                                         cover) is not None

    @sanitizer.mutates_engine_state
    def build_plan(self, plan: BuildPlan, *,
                   workers: int = 0) -> tuple[BuildReport, list[IndexSegment]]:
        """Execute a build plan: one shared batched pass (or a process
        pool when ``workers > 1``), installing every still-missing
        target into the catalog.  Returns the report and the installed
        segments in plan order."""
        report = BuildReport(requested=len(plan), workers=max(1, workers))
        installed: list[IndexSegment] = []
        with self.cost_model.muted():
            todo = BuildPlanner()
            for target in plan:
                if self._target_satisfied(target):
                    report.reused += 1
                else:
                    todo.add_target(target)
            pending = todo.plan()
            if pending.is_empty:
                return report, installed
            executor = BuildExecutor(workers=workers,
                                     block_size=self.block_size,
                                     compression=self.compression)
            images, scans = executor.build_images(
                self.collection, self.summary, self.scorer, pending)
            report.collection_scans = scans
            for target, image in images:
                segment = self.catalog.install_segment_bytes(
                    target.kind, target.term, image, scope=target.scope)
                installed.append(segment)
                report.built += 1
                report.entries += segment.entry_count
                report.bytes_built += segment.size_bytes
                report.segments.append(segment.describe())
        return report, installed

    def build_segments(self, targets: list[BuildTarget] | BuildPlan, *,
                       workers: int = 0) -> BuildReport:
        """Materialize *targets* (deduplicating first); see
        :meth:`build_plan`."""
        planner = BuildPlanner()
        for target in targets:
            planner.add_target(target)
        report, _installed = self.build_plan(planner.plan(), workers=workers)
        return report

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, query: str | NexiQuery, *, vague: bool = True) -> TranslatedQuery:
        if isinstance(query, str):
            query = parse_nexi(query)
        return translate_query(query, self.summary, self.tokenizer, vague=vague)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, query: str | NexiQuery, k: int | None = None,
                 method: str = "auto", *, vague: bool = True,
                 mode: str = "nexi", require_phrases: bool = False) -> ResultSet:
        """Evaluate *query*, returning all answers or the top *k*.

        ``method`` is one of ``era``, ``ta``, ``ita``, ``merge`` or
        ``auto``.  ``ita`` runs TA but reports the ideal-heap cost.

        ``mode`` selects the evaluation semantics:

        * ``'nexi'`` (default) — full NEXI semantics: clauses evaluated
          separately, descendant votes and ancestor support combined by
          containment, the last step's boolean predicate enforced.  In
          this mode multi-clause queries evaluate each clause
          exhaustively, so TA's top-k early termination only helps
          single-clause queries.
        * ``'flat'`` — the paper's §2.2 single-task evaluation: one
          retrieval over the union of all clause sids and terms, ranked
          directly.  This is what the paper's experiments time (each
          query of Table 1 is one sid list + one term list) and what
          the benchmark harness uses.
        """
        translated = self.translate(query, vague=vague)
        return self.evaluate_translated(translated, k, method, mode=mode,
                                        require_phrases=require_phrases)

    def evaluate_translated(self, translated: TranslatedQuery,
                            k: int | None = None, method: str = "auto", *,
                            mode: str = "nexi",
                            require_phrases: bool = False) -> ResultSet:
        """Evaluate an already-translated query (see :meth:`evaluate`).

        Splitting translation from retrieval lets callers translate once
        and run several strategies over the same translation — the race
        path below does exactly that, and the serving layer uses it to
        run a race's TA and Merge legs on two executor workers.
        """
        if method not in METHODS:
            raise RetrievalError(f"unknown method {method!r}; choose from {METHODS}")
        if mode not in ("nexi", "flat"):
            raise RetrievalError(f"unknown mode {mode!r}; choose 'nexi' or 'flat'")
        if k is not None and k < 1:
            raise RetrievalError(f"k must be at least 1 or None, got {k}")
        if method == "race":
            # Paper §4: run TA and Merge in parallel, return the first
            # finisher.  Requires both index kinds to be available.
            # The shared translation is reused by both legs.
            ta_result = self.evaluate_translated(
                translated, k, "ta", mode=mode, require_phrases=require_phrases)
            merge_result = self.evaluate_translated(
                translated, k, "merge", mode=mode,
                require_phrases=require_phrases)
            outcome = race_strategies((ta_result.hits, ta_result.stats),
                                      (merge_result.hits, merge_result.stats))
            return ResultSet(hits=outcome.hits, stats=outcome.stats, k=k)
        if method == "auto":
            method = self.choose_method(translated, k)

        if mode == "flat":
            return self._evaluate_flat(translated, method, k)

        total = EvaluationStats(method=method)
        # With several clauses, each must be evaluated exhaustively for
        # the combination step to be exact (see docstring).
        clause_k = k if len(translated.clauses) == 1 else None
        clause_hits: list[list[ScoredHit]] = []
        for clause in translated.clauses:
            hits, stats = self._evaluate_clause(clause, method, clause_k)
            clause_hits.append(hits)
            total.merge_with(stats)

        hits = self._combine(translated, clause_hits)
        if require_phrases:
            hits = self._filter_phrases(translated, hits)
        if method == "ita":
            total.cost = total.ideal_cost
        if k is not None:
            hits = hits[:k]
        return ResultSet(hits=hits, stats=total, k=k)

    def _filter_phrases(self, translated: TranslatedQuery,
                        hits: list[ScoredHit]) -> list[ScoredHit]:
        """Keep only hits containing every target-clause quoted phrase.

        Phrases are matched by positional adjacency of the surviving
        tokens — stopwords consume no position, so ``"state of the
        art"`` matches the adjacent tokens ``state art``.
        """
        phrases = [phrase for clause in translated.target_clauses
                   for phrase in clause.phrases]
        if not phrases:
            return hits
        kept = []
        for hit in hits:
            document = self.collection.document(hit.docid)
            if all(self._contains_phrase(document, hit, phrase)
                   for phrase in phrases):
                kept.append(hit)
        return kept

    def _contains_phrase(self, document: Document, hit: ScoredHit,
                         phrase: tuple[str, ...]) -> bool:
        tokens = document.tokens_in_span(hit.start_pos, hit.end_pos)
        by_position = {t.position: t.term for t in tokens}
        for token in tokens:
            self.cost_model.compare()
            if token.term != phrase[0]:
                continue
            if all(by_position.get(token.position + offset) == word
                   for offset, word in enumerate(phrase[1:], start=1)):
                return True
        return False

    def flat_clause(self, translated: TranslatedQuery) -> TranslatedClause:
        """The paper's §2.2 single retrieval task for *translated*: one
        clause over the union of all clause sids and merged term
        weights.  Exposed so coordinators (the sharded engine) can set
        up flat-mode sessions without re-deriving the union."""
        weights = translated.flat_term_weights()
        return TranslatedClause(
            step_index=len(translated.query.steps) - 1,
            pattern=translated.target_pattern,
            sids=translated.flat_sids(),
            term_weights=tuple(sorted(weights.items())),
            excluded_terms=(),
            is_target=True,
        )

    def _evaluate_flat(self, translated: TranslatedQuery, method: str,
                       k: int | None) -> ResultSet:
        hits, stats = self._evaluate_clause(self.flat_clause(translated),
                                            method, k)
        if method == "ita":
            stats.method = "ita"
            stats.cost = stats.ideal_cost
        if k is not None:
            hits = hits[:k]
        return ResultSet(hits=hits, stats=stats, k=k)

    def _evaluate_clause(self, clause: TranslatedClause, method: str,
                         k: int | None) -> tuple[list[ScoredHit], EvaluationStats]:
        if not clause.sids or not clause.terms:
            return [], EvaluationStats(method=method)
        weights = dict(clause.term_weights)
        if method == "era":
            return era_retrieve(self.blocked_elements, self.blocked_postings,
                                sorted(clause.sids), list(clause.terms),
                                self.scorer, self.cost_model, weights)
        if method in ("ta", "ita"):
            segments = self.segments_for(clause, "rpl")
            effective_k = k if k is not None else max(
                1, sum(s.entry_count for s in segments.values()))
            hits, stats = ta_retrieve(self.catalog, segments, clause.sids,
                                      effective_k, self.cost_model, weights,
                                      batch_size=self.ta_batch_size)
            if method == "ita":
                stats.method = "ita"
            return hits, stats
        if method == "merge":
            segments = self.segments_for(clause, "erpl")
            return merge_retrieve(self.catalog, segments, clause.sids,
                                  self.cost_model, weights)
        if method == "wand":
            segments = self.segments_for(clause, "erpl")
            effective_k = k if k is not None else max(
                1, sum(s.entry_count for s in segments.values()))
            return wand_retrieve(self.catalog, segments, clause.sids,
                                 effective_k, self.cost_model, weights,
                                 bound_segments=self.bound_segments_for(clause))
        raise RetrievalError(f"unknown method {method!r}")

    def segments_for(self, clause: TranslatedClause,
                     kind: str) -> dict[str, IndexSegment]:
        """Resolve one segment per clause term (materializing universal
        lists on demand unless ``auto_materialize`` is off)."""
        segments: dict[str, IndexSegment] = {}
        for term in clause.terms:
            segment = self.catalog.find_segment(kind, term, clause.sids)
            if segment is None:
                if not self.auto_materialize:
                    raise MissingIndexError(kind, term=term)
                if kind == "rpl":
                    segment = self.materialize_rpl(term)
                else:
                    segment = self.materialize_erpl(term)
            segments[term] = segment
        return segments

    def bound_segments_for(
            self, clause: TranslatedClause) -> dict[str, IndexSegment | None]:
        """Resident RPL segments per clause term, for WAND's static
        upper bounds.  Pure probe: absent segments map to ``None`` (the
        evaluator falls back to the ERPL headers) — nothing is
        materialized, so this is safe under a read lock."""
        return {term: self.catalog.find_segment("rpl", term, clause.sids)
                for term in clause.terms}

    # ------------------------------------------------------------------
    # Clause combination
    # ------------------------------------------------------------------
    def _combine(self, translated: TranslatedQuery,
                 clause_hits: list[list[ScoredHit]]) -> list[ScoredHit]:
        clauses = translated.clauses
        last_step = len(translated.query.steps) - 1

        # 1. Candidate targets and their direct scores.
        candidates: dict[tuple[int, int], ScoredHit] = {}
        satisfied: dict[tuple[int, int], set[int]] = {}

        def note(key: tuple[int, int], clause_index: int) -> None:
            satisfied.setdefault(key, set()).add(clause_index)

        for index, (clause, hits) in enumerate(zip(clauses, clause_hits)):
            if clause.is_target:
                for hit in hits:
                    key = hit.element_key()
                    note(key, index)
                    existing = candidates.get(key)
                    if existing is None:
                        candidates[key] = ScoredHit(hit.score, hit.docid, hit.end_pos,
                                                    sid=hit.sid, length=hit.length)
                    else:
                        existing.score += hit.score
            elif clause.step_index == last_step:
                # relative-path clause on the last step: descendants vote
                # for their target-sid ancestors.
                for hit in hits:
                    for ancestor in self._ancestors_in_sids(
                            hit, translated.target_sids):
                        key = ancestor.element_key()
                        note(key, index)
                        if key not in candidates:
                            candidates[key] = ancestor
                        candidates[key].score += self.support_weight * hit.score
                        self.cost_model.score_combine()

        # 2. Support from earlier steps: discounted ancestor contributions.
        for index, (clause, hits) in enumerate(zip(clauses, clause_hits)):
            if clause.is_target or clause.step_index == last_step:
                continue
            for hit in hits:
                for key, candidate in candidates.items():
                    self.cost_model.compare()
                    if hit.docid != candidate.docid:
                        continue
                    if (hit.contains(candidate)
                            or hit.element_key() == key
                            or candidate.contains(hit)):
                        candidate.score += self.support_weight * hit.score
                        note(key, index)
                        self.cost_model.score_combine()

        # Pure structural / comparison queries carry no about clauses:
        # every target-sid element is a candidate (at score zero).
        if not clauses:
            for sid in sorted(translated.target_sids):
                for span in ExtentIterator(self.elements, sid).scan():
                    candidates[(span.docid, span.endpos)] = ScoredHit(
                        0.0, span.docid, span.endpos, sid=span.sid,
                        length=span.length)

        # 3. Value comparisons: satisfaction per candidate, by positional
        # relation to an element satisfying the comparison.
        comparison_hits = [self._comparison_hits(tc)
                           for tc in translated.comparisons]

        def comparison_ok(comp_index: int, candidate: ScoredHit) -> bool:
            comparison = translated.comparisons[comp_index]
            for hit in comparison_hits[comp_index]:
                self.cost_model.compare()
                if hit.docid != candidate.docid:
                    continue
                if (hit.contains(candidate) or candidate.contains(hit)
                        or hit.element_key() == candidate.element_key()):
                    return True
                # Sibling case: the compared element and the candidate
                # are joined through the comparison's step element
                # (e.g. //article[.//yr > 2000]//sec — yr and sec are
                # siblings under the shared article).
                for ancestor in self._ancestors_in_sids(
                        hit, comparison.step_sids):
                    if (ancestor.contains(candidate)
                            or ancestor.element_key() == candidate.element_key()):
                        return True
            return False

        # 4. Enforce the last step's boolean predicate (about clauses by
        # recorded satisfaction, comparisons by positional test), and
        # AND in any comparisons from earlier steps.
        predicate = translated.query.steps[last_step].predicate
        about_ids = _about_indices_for_step(clauses, last_step)
        comp_ids = [index for index, tc in enumerate(translated.comparisons)
                    if tc.step_index == last_step]
        earlier_comp_ids = [index for index, tc
                            in enumerate(translated.comparisons)
                            if tc.step_index != last_step]

        kept = {}
        for key, candidate in candidates.items():
            if predicate is not None and not _predicate_satisfied(
                    predicate, about_ids, comp_ids, satisfied.get(key, set()),
                    lambda ci, c=candidate: comparison_ok(ci, c)):
                continue
            if any(not comparison_ok(ci, candidate)
                   for ci in earlier_comp_ids):
                continue
            kept[key] = candidate
        candidates = kept

        hits = list(candidates.values())
        self.cost_model.sort(len(hits))
        hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))
        return hits

    def _comparison_hits(self, comparison: TranslatedComparison) -> list[ScoredHit]:
        """Elements of the comparison's sids satisfying its value test."""
        hits: list[ScoredHit] = []
        if not comparison.sids:
            return hits
        for document in self.collection:
            positions = [t.position for t in document.tokens]
            for node in document.elements():
                sid = self.summary.sid_of(document.docid, node.end_pos)
                if sid not in comparison.sids:
                    continue
                lo = bisect_right(positions, node.start_pos)
                hi = bisect_left(positions, node.end_pos)
                for occurrence in document.tokens[lo:hi]:
                    self.cost_model.compare()
                    if comparison.clause.matches(occurrence.term):
                        hits.append(ScoredHit(0.0, document.docid,
                                              node.end_pos, sid=sid,
                                              length=node.length))
                        break
        return hits

    def _ancestors_in_sids(self, hit: ScoredHit,
                           target_sids: frozenset[int]) -> list[ScoredHit]:
        """Ancestors-or-self of *hit* whose sid is in *target_sids*."""
        document = self.collection.document(hit.docid)
        node = document.find_by_end(hit.end_pos)
        result = []
        while node is not None:
            sid = self.summary.sid_of(hit.docid, node.end_pos)
            if sid in target_sids:
                result.append(ScoredHit(0.0, hit.docid, node.end_pos,
                                        sid=sid, length=node.length))
            node = node.parent
        return result

    # ------------------------------------------------------------------
    # Strategy selection (simple heuristic; the advisor refines this)
    # ------------------------------------------------------------------
    def choose_method(self, translated: TranslatedQuery, k: int | None) -> str:
        have_rpl = all(
            self.catalog.find_segment("rpl", term, clause.sids) is not None
            for clause in translated.clauses for term in clause.terms)
        have_erpl = all(
            self.catalog.find_segment("erpl", term, clause.sids) is not None
            for clause in translated.clauses for term in clause.terms)
        if self.auto_materialize:
            have_rpl = have_erpl = True
        if k is not None and k <= 10 and have_rpl:
            return "ta"
        distinct_terms = {term for clause in translated.clauses
                          for term in clause.terms}
        if k is not None and k > 10 and len(distinct_terms) >= 2 and have_erpl:
            # Many moderately-selective terms at a large finite k: the
            # DAAT pivot skips what Merge would stream and what TA
            # would heap — WAND's sweet spot.
            return "wand"
        if have_erpl:
            return "merge"
        if have_rpl:
            return "ta"
        return "era"

    def missing_segments(self, translated: TranslatedQuery,
                         kinds: tuple[str, ...] = ("rpl", "erpl"), *,
                         mode: str = "nexi") -> list[tuple[str, str, frozenset[int]]]:
        """``(kind, term, sids)`` triples the query needs but lacks.

        The serving layer consults this before evaluation: an empty
        list means every forced-method evaluation can proceed without
        mutating the catalog, so the query may run under a read lock.
        """
        if mode == "flat":
            sids = translated.flat_sids()
            wanted = [(term, sids) for term in translated.flat_term_weights()]
        else:
            wanted = [(term, clause.sids) for clause in translated.clauses
                      for term in clause.terms]
        missing = []
        for term, sids in wanted:
            for kind in kinds:
                if self.catalog.find_segment(kind, term, sids) is None:
                    missing.append((kind, term, frozenset(sids)))
        return missing

    @sanitizer.mutates_engine_state
    def warm_segments(self, missing: list[tuple], *, workers: int = 0) -> int:
        """Materialize a universal segment for each ``(kind, term, ...)``
        entry of *missing* (as produced by :meth:`missing_segments`)
        that is still absent.  Returns the number of segments created.

        The serving layer calls this under its write lock before
        retrying a forced-method evaluation that reported missing
        indexes.  All absent segments are built by one batched
        collection pass via :meth:`build_plan` instead of one per-term
        scan each.
        """
        planner = BuildPlanner()
        planner.add_missing(missing)
        report, _installed = self.build_plan(planner.plan(), workers=workers)
        #: Scan accounting + built counts are kept for telemetry.
        self.last_build_report = report
        return report.built

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    @sanitizer.mutates_engine_state
    def add_document(self, source: str | Document, docid: int | None = None) -> Document:
        """Add one document to the live engine.

        Updates the collection, summary (path-determined summaries
        extend in place), Elements and PostingLists tables — all
        incrementally: docid allocation is O(1), only the extents the
        new document touches are re-blocked, and instead of dropping
        every RPL/ERPL segment whose term occurs in the document, the
        document's scored entries are appended to each affected segment
        as a small LSM **delta run**.  The read path merges base +
        deltas (byte-identical results to a from-scratch rebuild);
        :meth:`compact_segments` folds deltas back into the base when
        their size ratio trips.

        Scoring note: the engine's scorer keeps the corpus-statistics
        snapshot taken at construction, so scores of existing elements
        are unchanged by the insert — which is exactly why appending a
        delta run is exact.  Call :meth:`rebuild_scorer` to refresh
        statistics (which drops all segments, since every stored score
        depends on them).
        """
        if isinstance(source, str):
            parser = XMLParser(self.tokenizer)
            next_id = docid if docid is not None else self.collection.next_docid
            document = parser.parse(source, next_id)
        else:
            document = source
        self._ingest(document, None)
        return document

    @sanitizer.mutates_engine_state
    def apply_replicated_document(
            self, document: Document,
            deltas: tuple[tuple[int, str, str, tuple[RplEntry, ...]], ...]
            ) -> Document:
        """Install a leader-ingested document on a follower replica.

        Structural state (collection, summary, Elements/PostingLists
        tables) is recomputed locally — it is cheap and deterministic —
        but the scored delta rows are the *shipped* ones, keyed by the
        leader's ``(segment id, kind, term)``, so every replica appends
        exactly the leader's LSM runs without re-running the scorer.
        """
        self._ingest(document, deltas)
        return document

    def _ingest(self, document: Document,
                shipped: tuple[tuple[int, str, str,
                                     tuple[RplEntry, ...]], ...] | None
                ) -> None:
        with self.cost_model.muted():
            self.collection.add(document)
            self.summary.extend(document)
            affected_sids: set[int] = set()
            for node in document.elements():
                sid = self.summary.sid_of(document.docid, node.end_pos)
                affected_sids.add(sid)
                self.elements.insert((sid, document.docid, node.end_pos,
                                      node.length))
            affected = extend_posting_lists(self.postings, document)
            self.blocked_elements.rebuild(sids=affected_sids)
            self.blocked_postings.rebuild(terms=affected)
            self.last_ingest_deltas = []
            applied_ids: set[int] = set()
            if shipped is not None:
                for segment_id, kind, term, rows in shipped:
                    # A shipped id this replica lacks — or holds a
                    # *different* replica-local lazy build under — is a
                    # leader-local materialization: skip it.  A later
                    # on-demand build here scans the (already extended)
                    # collection and produces the complete list anyway.
                    if not self.catalog.has_segment(segment_id):
                        continue
                    resident = self.catalog.get_segment(segment_id)
                    if (resident.kind, resident.term) != (kind, term):
                        continue
                    self.catalog.append_delta(segment_id, list(rows))
                    self.last_ingest_deltas.append((segment_id, rows))
                    applied_ids.add(segment_id)
            # Segments no shipped rows landed on — all of them on a
            # leader/standalone ingest, replica-local lazy builds on a
            # follower — compute their delta rows locally.
            stale = [segment for segment in self.catalog.segments()
                     if segment.term in affected
                     and segment.segment_id not in applied_ids]
            if stale:
                delta_entries = compute_document_entries(
                    document, self.summary,
                    sorted({segment.term for segment in stale}),
                    self.scorer)
                for segment in stale:
                    rows = filter_scope(delta_entries, segment.term,
                                        segment.scope)
                    # A scoped segment whose scope excludes every new
                    # entry is untouched — it is still exact as-is.
                    if rows:
                        self.catalog.append_delta(segment.segment_id,
                                                  rows)
                        self.last_ingest_deltas.append(
                            (segment.segment_id, tuple(rows)))
        self.epoch += 1

    @sanitizer.mutates_engine_state
    def compact_segments(self, *, ratio: float | None = None,
                         force: bool = False) -> int:
        """Fold LSM delta runs into base runs where the delta-to-base
        size ratio trips (``force=True`` folds every segment carrying
        deltas).  Returns the number of segments compacted.

        Compaction never changes query answers — the merged run holds
        exactly the entries the iterators were already merging — so the
        epoch is *not* bumped and result caches stay valid.
        """
        limit = self.compaction_ratio if ratio is None else ratio
        with self.cost_model.muted():
            candidates = self.catalog.compaction_candidates(limit, force=force)
            for segment_id in candidates:
                self.catalog.compact_segment(segment_id)
        return len(candidates)

    @sanitizer.mutates_engine_state
    def rebuild_scorer(self, scorer_factory: Callable[[ScoringStats], ElementScorer] | None = None) -> None:
        """Refresh corpus statistics and drop every stored segment.

        ``scorer_factory`` receives the fresh :class:`ScoringStats` and
        returns a scorer; by default a BM25 scorer is built.
        """
        with self.cost_model.muted():
            stats = ScoringStats.from_collection(self.collection)
            if scorer_factory is None:
                self.scorer = BM25Scorer(stats)
            else:
                self.scorer = scorer_factory(stats)
            for segment in list(self.catalog.segments()):
                self.catalog.drop_segment(segment.segment_id)
        self.epoch += 1

    # ------------------------------------------------------------------
    # Plan explanation
    # ------------------------------------------------------------------
    def explain(self, query: str | NexiQuery, k: int | None = None, *,
                vague: bool = True) -> dict:
        """Describe how the engine would evaluate *query* — translation,
        per-method index availability, and the auto-chosen method —
        without charging the cost model or running anything."""
        with self.cost_model.muted():
            translated = self.translate(query, vague=vague)
            clause_plans = []
            for clause in translated.clauses:
                terms = {}
                for term in clause.terms:
                    rpl = self.catalog.find_segment("rpl", term, clause.sids)
                    erpl = self.catalog.find_segment("erpl", term, clause.sids)
                    terms[term] = {
                        "rpl": rpl.describe() if rpl else None,
                        "erpl": erpl.describe() if erpl else None,
                        "postings": sum(
                            len(row[3]) for row in
                            self.postings.scan_prefix((term,))),
                    }
                clause_plans.append({
                    "pattern": str(clause.pattern),
                    "role": "target" if clause.is_target else "support",
                    "sids": sorted(clause.sids),
                    "extent_sizes": {
                        sid: self.summary.extent_size(sid)
                        for sid in sorted(clause.sids)},
                    "terms": terms,
                })
            return {
                "query": str(translated.query),
                "target_pattern": str(translated.target_pattern),
                "num_sids": translated.num_sids,
                "num_terms": translated.num_terms,
                "comparisons": [str(tc.clause) for tc in translated.comparisons],
                "clauses": clause_plans,
                "chosen_method": self.choose_method(translated, k),
            }

    # ------------------------------------------------------------------
    # Index persistence
    # ------------------------------------------------------------------
    def save_indexes(self, directory: str) -> None:
        """Persist Elements, PostingLists and the RPL/ERPL catalog.

        The collection and summary are *not* saved — they are cheap to
        rebuild from the source documents deterministically, while the
        index tables are the expensive artifacts (paper §5.1's
        gigabytes).
        """
        os.makedirs(directory, exist_ok=True)
        with self.cost_model.muted():
            self.elements.save(os.path.join(directory, "elements.tbl"))
            self.postings.save(os.path.join(directory, "postings.tbl"))
            self.catalog.save(os.path.join(directory, "catalog"))

    @sanitizer.mutates_engine_state
    def load_indexes(self, directory: str) -> None:
        """Replace this engine's index tables from a saved directory."""
        with self.cost_model.muted():
            self.elements.load(os.path.join(directory, "elements.tbl"))
            self.postings.load(os.path.join(directory, "postings.tbl"))
            self.catalog.load(os.path.join(directory, "catalog"))
            # The catalog adopts whatever backend the store was written
            # with; keep the engine's view in step.
            self.backend = self.catalog.backend
            self.compression = self.catalog.compression
            self.blocked_elements.rebuild()
            self.blocked_postings.rebuild()
        self.epoch += 1

    # ------------------------------------------------------------------
    # Buffer-pool management
    # ------------------------------------------------------------------
    def use_page_cache(self, cache: PageCache) -> None:
        """Route every index structure through one shared buffer pool.

        Covers the Elements and PostingLists B+-trees, both blocked
        access paths, and every RPL/ERPL block sequence in the catalog
        — the single-cache configuration BerkeleyDB runs in the paper.
        """
        self.elements.tree.use_cache(cache)
        self.postings.tree.use_cache(cache)
        self.blocked_elements.use_cache(cache)
        self.blocked_postings.use_cache(cache)
        self.catalog.use_cache(cache)

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {
            "collection": self.collection.describe(),
            "summary": self.summary.describe(),
            "elements_rows": len(self.elements),
            "elements_bytes": self.elements.size_bytes,
            "postings_rows": len(self.postings),
            "postings_bytes": self.postings.size_bytes,
            "catalog_bytes": self.catalog.total_bytes,
            "segments": self.catalog.describe(),
            "storage": self.catalog.storage_snapshot(),
        }


def _about_indices_for_step(clauses: list[TranslatedClause], step: int) -> dict[int, int]:
    """Map the i-th about clause of *step*'s predicate (in AST order) to
    its translated-clause index.  Translation enumerates about clauses
    in AST order, so positions line up."""
    mapping = {}
    position = 0
    for index, clause in enumerate(clauses):
        if clause.step_index == step:
            mapping[position] = index
            position += 1
    return mapping


def _predicate_satisfied(predicate: Predicate, about_ids: dict[int, int],
                         comp_ids: list[int], satisfied: set[int],
                         comparison_ok: Callable[[int], bool],
                         _counters: dict | None = None) -> bool:
    """Evaluate the predicate's boolean structure for one candidate.

    About-clause atoms consult the recorded *satisfied* clause indices;
    comparison atoms call *comparison_ok* with the translated
    comparison's index.  Atoms are matched positionally, in AST order.
    """
    if _counters is None:
        _counters = [0, 0]  # [about atoms seen, comparison atoms seen]
    if isinstance(predicate, AboutClause):
        position = _counters[0]
        _counters[0] += 1
        index = about_ids.get(position)
        return index is not None and index in satisfied
    if isinstance(predicate, ComparisonClause):
        position = _counters[1]
        _counters[1] += 1
        if position >= len(comp_ids):
            return False
        return comparison_ok(comp_ids[position])
    if isinstance(predicate, BooleanPredicate):
        results = [_predicate_satisfied(op, about_ids, comp_ids, satisfied,
                                        comparison_ok, _counters)
                   for op in predicate.operands]
        if predicate.op == "and":
            return all(results)
        return any(results)
    raise RetrievalError(f"unsupported predicate node {type(predicate).__name__}")
