"""Result snippets: keyword-in-context extraction for hits.

A retrieval system's results page shows *why* an element matched.  The
document model keeps the full token stream with positions, so a snippet
is a window of tokens around the densest cluster of query-term matches
inside the hit's span, with matches marked.
"""

from __future__ import annotations

from ..corpus.collection import Collection
from ..scoring.combine import ScoredHit

__all__ = ["make_snippet", "Snippet"]


class Snippet:
    """A keyword-in-context excerpt."""

    __slots__ = ("words", "matches", "leading_gap", "trailing_gap")

    def __init__(self, words: list[str], matches: set[int],
                 leading_gap: bool, trailing_gap: bool) -> None:
        self.words = words
        self.matches = matches  # indices into words
        self.leading_gap = leading_gap
        self.trailing_gap = trailing_gap

    def text(self, highlight: str = "[{}]") -> str:
        """Render the snippet; matched terms wrapped via *highlight*."""
        rendered = [highlight.format(word) if i in self.matches else word
                    for i, word in enumerate(self.words)]
        body = " ".join(rendered)
        prefix = "… " if self.leading_gap else ""
        suffix = " …" if self.trailing_gap else ""
        return f"{prefix}{body}{suffix}"

    def __bool__(self) -> bool:
        return bool(self.words)


def make_snippet(collection: Collection, hit: ScoredHit,
                 terms: set[str] | frozenset[str],
                 window: int = 12) -> Snippet:
    """Extract a ~*window*-token snippet around the hit's best match run.

    The window is centred on the position whose surrounding window
    contains the most query-term occurrences; ties resolve to the
    earliest.  Returns an empty snippet when the element has no tokens.
    """
    if window < 1:
        raise ValueError("window must be positive")
    document = collection.document(hit.docid)
    tokens = document.tokens_in_span(hit.start_pos, hit.end_pos)
    if not tokens:
        return Snippet([], set(), False, False)

    match_flags = [token.term in terms for token in tokens]
    best_start, best_count = 0, -1
    for start in range(max(1, len(tokens) - window + 1)):
        count = sum(match_flags[start: start + window])
        if count > best_count:
            best_start, best_count = start, count
    chunk = tokens[best_start: best_start + window]
    matches = {i for i, token in enumerate(chunk) if token.term in terms}
    return Snippet(
        words=[token.term for token in chunk],
        matches=matches,
        leading_gap=best_start > 0,
        trailing_gap=best_start + window < len(tokens),
    )
