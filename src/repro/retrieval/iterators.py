"""Index iterators: the access paths of the retrieval strategies.

* :class:`ExtentIterator` — elements of one sid in (docid, endpos)
  order, with the ERA primitives ``first_element`` and
  ``next_element_after`` (paper §3.2);
* :class:`PostingIterator` — positions of one term, ending at the
  ``m-pos`` sentinel;
* :class:`RplIterator` — sorted (descending-score) access over one RPL
  segment, skipping entries whose sid is outside the query (paper §3.3);
  skipped entries are still decoded and therefore still cost, which is
  the mechanism behind TA losing to Merge on wide-scope lists;
* :class:`ErplIterator` — position-ordered stream over the ERPL ranges
  of one (term, sid set), implemented as a k-way merge over the per-sid
  ranges (ERPL entries are keyed sid-major, paper §2.2).

Each iterator runs over either the row-store tables (a plain
:class:`~repro.storage.table.Table`) or the block-oriented access paths
(:class:`~repro.index.elements.BlockedElements`,
:class:`~repro.index.postings.BlockedPostings`, and the catalog's
block sequences).  The blocked paths are *batched*: a block is decoded
only when its resident header says it can matter — ``next_element_after``
and the per-sid ERPL streams leap over blocks whose ``last_key``
precedes the probe (``skip_to``), and the RPL path prunes undecoded
tail blocks whose block-max score cannot reach a threshold
(``skip_until_score_below``).

Decoding is columnar: blocks are opened through
:meth:`~repro.storage.blocks.BlockSequence.read_block_columns` and the
iterators walk the parallel arrays directly, materializing row tuples
only for the entries they actually emit.  The batch entry points —
:meth:`RplIterator.next_entries`, :meth:`ErplIterator.take_until`,
:meth:`PostingIterator.next_chunk` — hand whole decoded runs to the
strategies; the entry-at-a-time API (``next_entry``, ``next_position``)
remains as a thin shim over the same state, with identical cost-model
charges either way (the charge is per block opened, never per view).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from ..corpus.document import M_POS
from ..index.catalog import IndexCatalog, IndexSegment
from ..index.rpl import RplEntry
from ..storage.blocks import BlockSequence
from ..storage.cost import CostModel
from ..storage.serialization import BlockColumns
from ..storage.table import Table

__all__ = ["ElementSpan", "DUMMY_ELEMENT", "ExtentIterator", "PostingIterator",
           "RplIterator", "ErplIterator"]

Position = tuple[int, int]  # (docid, offset)


@dataclass(frozen=True)
class ElementSpan:
    """An element as the Elements table describes it."""

    sid: int
    docid: int
    endpos: int
    length: int

    @property
    def startpos(self) -> int:
        return self.endpos - self.length

    @property
    def start(self) -> Position:
        return (self.docid, self.startpos)

    @property
    def end(self) -> Position:
        return (self.docid, self.endpos)

    def covers(self, position: Position) -> bool:
        """Strictly-inside test (tag positions make this exact)."""
        return self.start < position < self.end

    @property
    def is_dummy(self) -> bool:
        return self.endpos >= M_POS[1]


#: The "dummy element" the paper returns when an extent is exhausted:
#: end position m-pos, length zero.
DUMMY_ELEMENT = ElementSpan(sid=0, docid=M_POS[0], endpos=M_POS[1], length=0)


class ExtentIterator:
    """Iterates the extent of one sid in document/position order.

    Accepts either the Elements :class:`Table` (row-at-a-time seeks) or
    a :class:`~repro.index.elements.BlockedElements` access path, where
    each probe bisects the resident skip directory and decodes at most
    one block — columnar, so a probe touches only the key arrays.
    """

    def __init__(self, elements: object, sid: int) -> None:
        self.sid = sid
        if isinstance(elements, Table):
            self._table = elements
            self._seq = None
            self._model = None
        else:
            self._table = None
            self._seq = elements.sequence(sid)
            self._model = elements.cost_model
            self._block = 0

    # -- row-store path ------------------------------------------------
    def _from_cursor(self, cursor: object) -> ElementSpan:
        if not cursor.valid:
            return DUMMY_ELEMENT
        key = cursor.key
        if key[0] != self.sid:
            return DUMMY_ELEMENT
        row = cursor.value
        return ElementSpan(sid=row[0], docid=row[1], endpos=row[2], length=row[3])

    # -- shared API ----------------------------------------------------
    def first_element(self) -> ElementSpan:
        """The first element of the extent, or the dummy when empty."""
        if self._table is not None:
            cursor = self._table.seek((self.sid,))
            return self._from_cursor(cursor)
        self._model.seek()
        if self._seq is None or self._seq.block_count == 0:
            return DUMMY_ELEMENT
        self._block = 0
        columns = self._seq.read_block_columns(0)
        docids, endpositions = columns.keys
        return ElementSpan(sid=self.sid, docid=docids[0],
                           endpos=endpositions[0],
                           length=columns.payloads[0][0])

    def next_element_after(self, position: Position) -> ElementSpan:
        """The extent element with the lowest end position > *position*.

        Implemented as a search over the Elements index, exactly as the
        paper describes.  Returns the dummy element when exhausted.  On
        the blocked path the search bisects the skip directory first,
        so blocks ending before *position* are never decoded.
        """
        if self._table is not None:
            docid, offset = position
            cursor = self._table.seek((self.sid, docid, offset + 1))
            return self._from_cursor(cursor)
        return self.skip_to(position)

    def skip_to(self, position: Position) -> ElementSpan:
        """Blocked-path probe: leap the skip directory, decode one block."""
        docid, offset = position
        key_docid, key_endpos = docid, offset + 1
        self._model.seek()
        seq = self._seq
        if seq is None or seq.block_count == 0:
            return DUMMY_ELEMENT
        start = self._block
        if start > 0 and (key_docid, key_endpos) <= seq.headers[start - 1].last_key:
            start = 0  # non-monotone probe: restart the directory search
        index = seq.find_first_block_ge((key_docid, key_endpos), start=start)
        if index >= seq.block_count:
            self._block = seq.block_count - 1
            return DUMMY_ELEMENT
        self._block = index
        columns = seq.read_block_columns(index)
        docids, endpositions = columns.keys
        lo, hi = 0, columns.count
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            mid_docid = docids[mid]
            if mid_docid < key_docid or (mid_docid == key_docid
                                         and endpositions[mid] < key_endpos):
                lo = mid + 1
            else:
                hi = mid
        if steps:
            self._model.compare(steps)
        return ElementSpan(sid=self.sid, docid=docids[lo],
                           endpos=endpositions[lo],
                           length=columns.payloads[0][lo])

    def scan(self) -> Iterator[ElementSpan]:
        """All elements of the extent, in order (used by tests/examples)."""
        if self._table is not None:
            for row in self._table.scan_prefix((self.sid,)):
                yield ElementSpan(sid=row[0], docid=row[1], endpos=row[2],
                                  length=row[3])
            return
        if self._seq is None:
            return
        # Block-by-block through the charged read path: a full scan
        # must cost exactly what decoding every block costs — the
        # uncharged entries() bulk decode is for offline maintenance.
        sid = self.sid
        for index in range(self._seq.block_count):
            columns = self._seq.read_block_columns(index)
            docids, endpositions = columns.keys
            lengths = columns.payloads[0]
            for row in range(columns.count):
                yield ElementSpan(sid=sid, docid=docids[row],
                                  endpos=endpositions[row],
                                  length=lengths[row])


class PostingIterator:
    """Iterates the positions of one term; yields ``m-pos`` at the end.

    Accepts either the PostingLists :class:`Table` or a
    :class:`~repro.index.postings.BlockedPostings` access path, where
    whole fragments are decoded as single compressed blocks.

    :meth:`next_chunk` is the batch access path — one decoded fragment
    per call — and :meth:`next_position` is the entry-level shim over
    the same buffer (both charge per fragment opened, never per
    position).
    """

    def __init__(self, postings: object, term: str) -> None:
        self.term = term
        self._fragment: list[Position] = []
        self._index = 0
        self._exhausted = False
        if isinstance(postings, Table):
            self._cursor = postings.seek((term,))
            self._seq = None
        else:
            self._cursor = None
            self._seq = postings.sequence(term)
            self._block = 0
            postings.cost_model.seek()

    def next_chunk(self) -> list[Position] | None:
        """The next whole fragment of positions, or ``None`` at the end.

        Fragments end with the ``m-pos`` sentinel (the last stored
        fragment carries it), so a consumer sweeping chunk by chunk sees
        exhaustion exactly where the entry-level API would.
        """
        if self._cursor is not None:
            if not self._cursor.valid or self._cursor.key[0] != self.term:
                # Term absent from the corpus: behave as an empty list.
                return None
            row = self._cursor.value
            fragment = [tuple(pair) for pair in row[3]]
            self._cursor.advance()
            return fragment
        if self._seq is None or self._block >= self._seq.block_count:
            return None
        fragment = self._seq.read_block(self._block)
        self._block += 1
        return fragment

    def next_position(self) -> Position:
        """The next position, or ``m-pos`` forever once exhausted."""
        if self._exhausted:
            return M_POS
        while self._index >= len(self._fragment):
            chunk = self.next_chunk()
            if chunk is None:
                self._exhausted = True
                return M_POS
            self._fragment = chunk
            self._index = 0
        position = self._fragment[self._index]
        self._index += 1
        if position == M_POS:
            self._exhausted = True
        return position

    @property
    def exhausted(self) -> bool:
        """True once the m-pos sentinel has been returned."""
        return self._exhausted


class _RplRunCursor:
    """Sequential charged reader over one RPL run (base or delta).

    Mirrors the single-run iterator's charging exactly: one positioning
    seek on the first decode, a columnar block open per block entered,
    and block-skip accounting when the tail is pruned.  The cursor
    walks the decoded column arrays and materializes a row tuple only
    at :meth:`peek` time (cached until taken).
    """

    def __init__(self, sequence: BlockSequence, cost_model: CostModel) -> None:
        self._seq = sequence
        self._model = cost_model
        self._block = 0
        self._columns: BlockColumns | None = None
        self._count = 0
        self._index = 0
        self._row: tuple | None = None
        self._seeked = False
        self.last_read_score = float("inf")

    def peek(self) -> tuple | None:
        """The next raw row without consuming it, or ``None`` when the
        run is drained (decodes the next block on demand)."""
        if self._row is not None:
            return self._row
        while self._index >= self._count:
            if self._block >= self._seq.block_count:
                return None
            if not self._seeked:
                self._model.seek()
                self._seeked = True
            self._columns = self._seq.read_block_columns(self._block)
            self._count = self._columns.count
            self._block += 1
            self._index = 0
        self._row = self._columns.row(self._index)
        return self._row

    def take(self) -> tuple:
        row = self._row
        self._row = None
        self._index += 1
        self.last_read_score = row[1]
        return row

    @property
    def drained(self) -> bool:
        return (self._row is None
                and self._index >= self._count
                and self._block >= self._seq.block_count)

    @property
    def bound(self) -> float:
        """Best possible score of this run's unreturned entries."""
        if self._row is not None or self._index < self._count:
            return self.last_read_score
        if self._block < self._seq.block_count:
            return min(self._seq.headers[self._block].max_score,
                       self.last_read_score)
        return 0.0

    def skip_tail(self, threshold: float) -> int:
        """Prune undecoded tail blocks whose block-max rules them out."""
        count = self._seq.block_count
        if self._block >= count:
            return 0
        if self._seq.headers[self._block].max_score >= threshold:
            return 0
        skipped = count - self._block
        self._model.block_skip(skipped)
        self._block = count
        return skipped


class RplIterator:
    """Sorted access over one RPL segment with sid filtering.

    ``next_entries(limit)`` is the batch access path: it returns up to
    *limit* entries in descending score order whose sid belongs to
    *sids*, consuming whole decoded blocks columnar-style.  ``depth``
    counts every entry consumed (including skipped ones) and
    ``last_read_score`` tracks the score of the most recent entry — the
    value TA's threshold uses.  ``next_entry()`` is the entry-level shim
    (``next_entries(1)``): identical state transitions, identical cost
    charges.

    The segment is stored as compressed blocks: :meth:`next_block_columns`
    opens one block at a time, :attr:`upper_bound` tightens to the
    next undecoded block's header ``max_score`` at block boundaries (the
    block-max bound), and :meth:`skip_until_score_below` prunes the
    undecoded tail once no remaining block can matter.

    A segment carrying LSM delta runs (appended by ``add_document``) is
    read through a small k-way merge over per-run cursors: each run is
    individually score-descending with its own block-max directory, so
    always taking the best per-run head reproduces the exact global
    descending order, and the merged ``upper_bound`` — the max of the
    per-run bounds — stays sound for TA.  A segment with no deltas
    takes the original single-run path unchanged; both paths serve
    batches from the same columnar block decodes.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 sids: frozenset[int] | set[int]) -> None:
        self._segment = segment
        self.term = segment.term
        self._sids = set(sids)
        runs = catalog.runs_for(segment)
        self._seq = runs[0]
        self._model = catalog.cost_model
        self._cursors = ([_RplRunCursor(run, self._model) for run in runs]
                         if len(runs) > 1 else [])
        self._block = 0
        self._count = 0
        self._index = 0
        self._scores: tuple = ()
        self._sid_col: tuple = ()
        self._docid_col: tuple = ()
        self._end_col: tuple = ()
        self._len_col: tuple = ()
        self._seeked = False
        self.depth = 0
        self.skipped = 0
        self.last_read_score = float("inf")
        self.exhausted = False

    @property
    def length(self) -> int:
        return self._segment.entry_count

    def next_block_columns(self) -> BlockColumns | None:
        """Open the next block as raw ``(ir, score, sid, ...)`` columns."""
        if self._block >= self._seq.block_count:
            return None
        if not self._seeked:
            # Positioning at the head of the list is the one random I/O
            # sorted access pays, matching the row-store scan's seek.
            self._model.seek()
            self._seeked = True
        columns = self._seq.read_block_columns(self._block)
        self._block += 1
        return columns

    def next_block(self) -> list[tuple] | None:
        """Row-tuple view of :meth:`next_block_columns` (shim)."""
        columns = self.next_block_columns()
        if columns is None:
            return None
        return columns.rows()

    def next_entries(self, limit: int) -> list[RplEntry]:
        """Up to *limit* sorted-access entries, batched.

        Equivalent to *limit* successive ``next_entry()`` calls — same
        entries, same depth/skip accounting, same block-decode charges —
        but consuming the decoded column arrays directly.  Returns fewer
        than *limit* entries only at exhaustion.
        """
        out: list[RplEntry] = []
        if limit <= 0:
            return out
        if self._cursors:
            while len(out) < limit:
                entry = self._next_entry_merged()
                if entry is None:
                    break
                out.append(entry)
            return out
        sids = self._sids
        depth = self.depth
        skipped = self.skipped
        while len(out) < limit:
            if self._index >= self._count:
                columns = self.next_block_columns()
                if columns is None:
                    self.exhausted = True
                    self.last_read_score = 0.0
                    break
                payloads = columns.payloads
                self._scores = payloads[0]
                self._sid_col = payloads[1]
                self._docid_col = payloads[2]
                self._end_col = payloads[3]
                self._len_col = payloads[4]
                self._count = columns.count
                self._index = 0
            index, count = self._index, self._count
            scores, sid_col = self._scores, self._sid_col
            docid_col, end_col = self._docid_col, self._end_col
            len_col = self._len_col
            score = self.last_read_score
            while index < count and len(out) < limit:
                score = scores[index]
                sid = sid_col[index]
                if sid in sids:
                    out.append(RplEntry(score, sid, docid_col[index],
                                        end_col[index], len_col[index]))
                else:
                    skipped += 1
                depth += 1
                index += 1
            consumed = index - self._index
            self._index = index
            if consumed:
                self.last_read_score = score
        self.depth = depth
        self.skipped = skipped
        return out

    def next_entry(self) -> RplEntry | None:
        """Entry-level shim over :meth:`next_entries`."""
        entries = self.next_entries(1)
        return entries[0] if entries else None

    def _next_entry_merged(self) -> RplEntry | None:
        while True:
            best: _RplRunCursor | None = None
            best_key: tuple[float, int, int] | None = None
            for cursor in self._cursors:
                row = cursor.peek()
                if row is None:
                    continue
                key = (-row[1], row[3], row[4])
                if best_key is None or key < best_key:
                    best, best_key = cursor, key
            if best is None:
                self.exhausted = True
                self.last_read_score = 0.0
                return None
            row = best.take()
            self.depth += 1
            score, sid = row[1], row[2]
            self.last_read_score = score
            if sid not in self._sids:
                self.skipped += 1
                continue
            return RplEntry(score, sid, row[3], row[4], row[5])

    def skip_until_score_below(self, threshold: float) -> int:
        """Prune undecoded tail blocks that block-max rules out.

        Sound because every run is score-descending: if a run's next
        undecoded block's ``max_score`` is below *threshold*, so is
        every entry after it in that run.  Returns the number of blocks
        skipped; the skip directory is resident, so pruning is free
        except for the counter.
        """
        if self._cursors:
            skipped = sum(cursor.skip_tail(threshold)
                          for cursor in self._cursors)
            if all(cursor.drained for cursor in self._cursors):
                self.exhausted = True
                self.last_read_score = 0.0
            return skipped
        count = self._seq.block_count
        if self._block >= count:
            return 0
        if self._seq.headers[self._block].max_score >= threshold:
            return 0
        skipped = count - self._block
        self._model.block_skip(skipped)
        self._block = count
        if self._index >= self._count:
            # Nothing decoded remains either: the list is finished.
            self.exhausted = True
            self.last_read_score = 0.0
        return skipped

    @property
    def upper_bound(self) -> float:
        """Best possible score of any entry not yet returned.

        Within a block this is the classic last-read score; at a block
        boundary the next header's ``max_score`` is a tighter sound
        bound (block-max), letting TA stop without decoding the block.
        With delta runs the bound is the max of the per-run bounds —
        any unreturned entry lives in some run, so the max is sound.
        """
        if self.exhausted:
            return 0.0
        if self._cursors:
            return max(cursor.bound for cursor in self._cursors)
        if self._index < self._count:
            return self.last_read_score
        if self._block < self._seq.block_count:
            bound = self._seq.headers[self._block].max_score
            return min(bound, self.last_read_score)
        return self.last_read_score


class ErplIterator:
    """Position-ordered stream over the ERPL ranges of (term, sids).

    One underlying block stream per sid (each begins with a seek and a
    skip-directory search that leaps straight to the sid's first block),
    merged by (docid, endpos) with a small in-memory heap — the standard
    way to read a sid-major layout in position order.

    A segment with LSM delta runs contributes one stream per (sid, run)
    pair to the same heap; entry keys are unique across runs (deltas
    carry new docids), so the merged order is exactly the order a
    compacted segment would stream.

    :meth:`take_until` is the batch access path: it drains every entry
    strictly below a position bound in one call, galloping through the
    winning stream's decoded column arrays between heap touches, so the
    per-entry heap traffic of ``current``/``advance`` disappears on
    single-holder stretches.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 sids: frozenset[int] | set[int]) -> None:
        self._segment = segment
        self.term = segment.term
        self.rows_read = 0
        self._heap: list[tuple[Position, int, RplEntry]] = []
        self._streams = []
        runs = catalog.runs_for(segment)
        stream_id = 0
        for sid in sorted(sids):
            for sequence in runs:
                stream = _ErplSidStream(sequence, sid, catalog.cost_model)
                self._streams.append(stream)
                self._push_from(stream_id)
                stream_id += 1

    def _push_from(self, stream_id: int) -> None:
        row = self._streams[stream_id].next_row()
        if row is None:
            return
        self.rows_read += 1
        sid, docid, endpos, score, length = row
        entry = RplEntry(score, sid, docid, endpos, length)
        heapq.heappush(self._heap, ((docid, endpos), stream_id, entry))

    @property
    def current(self) -> RplEntry | None:
        """The entry at the iterator's head, or None when exhausted."""
        if not self._heap:
            return None
        return self._heap[0][2]

    @property
    def current_position(self) -> Position:
        if not self._heap:
            return M_POS
        return self._heap[0][0]

    def advance(self) -> None:
        if not self._heap:
            return
        _, stream_id, _ = heapq.heappop(self._heap)
        self._push_from(stream_id)

    def take_until(self, bound: Position) -> list[RplEntry]:
        """Pop and return every entry with position strictly < *bound*.

        The entries come back in position order, exactly as repeated
        ``current``/``advance`` would deliver them; block decodes are
        charged identically because both paths open the same blocks.
        """
        out: list[RplEntry] = []
        heap = self._heap
        while heap and heap[0][0] < bound:
            position, stream_id, entry = heapq.heappop(heap)
            out.append(entry)
            # Gallop: the popped stream stays the global head while its
            # next positions undercut both *bound* and the best other
            # stream, so bulk-take from its decoded block directly.
            limit = bound
            if heap and heap[0][0] < limit:
                limit = heap[0][0]
            rows = self._streams[stream_id].take_rows_below(limit)
            if rows:
                self.rows_read += len(rows)
                for sid, docid, endpos, score, length in rows:
                    out.append(RplEntry(score, sid, docid, endpos, length))
            self._push_from(stream_id)
        return out

    @property
    def exhausted(self) -> bool:
        return not self._heap


class _ErplSidStream:
    """Sequential reader over one sid's range of an ERPL block sequence.

    Walks the decoded column arrays (``sid``/``docid``/``endpos`` keys,
    ``score``/``length`` payloads); :meth:`take_rows_below` bulk-emits
    the run of rows under a position bound without re-materializing
    per-row state.
    """

    def __init__(self, sequence: BlockSequence, sid: int,
                 cost_model: CostModel) -> None:
        self.sid = sid
        self._seq = sequence
        self._model = cost_model
        self._sid_col: tuple = ()
        self._docid_col: tuple = ()
        self._end_col: tuple = ()
        self._score_col: tuple = ()
        self._len_col: tuple = ()
        self._count = 0
        self._index = 0
        #: Rows bypassed inside decoded blocks by :meth:`leap_to`.
        self.rows_bypassed = 0
        self._done = sequence.block_count == 0
        self._model.seek()
        if self._done:
            self._block = 0
            return
        # Leap the skip directory to the first block that can hold the sid.
        self._block = sequence.find_first_block_ge((sid, 0, 0))
        self._first_block = True

    @property
    def done(self) -> bool:
        return self._done

    def _load_next_block(self) -> bool:
        """Decode the next in-range block into the column fields."""
        if self._block >= self._seq.block_count:
            return False
        header = self._seq.headers[self._block]
        if header.first_key[0] > self.sid:
            return False
        columns = self._seq.read_block_columns(self._block)
        self._block += 1
        sid_col, docid_col, end_col = columns.keys
        start = 0
        if self._first_block:
            # Bisect past smaller-sid entries sharing the block.  The
            # full key probe is (sid, 0, 0), so the lexicographic test
            # collapses to the sid column alone.
            self._first_block = False
            sid = self.sid
            lo, hi = 0, columns.count
            steps = 0
            while lo < hi:
                mid = (lo + hi) // 2
                steps += 1
                if sid_col[mid] < sid:
                    lo = mid + 1
                else:
                    hi = mid
            if steps:
                self._model.compare(steps)
            start = lo
        self._sid_col = sid_col
        self._docid_col = docid_col
        self._end_col = end_col
        self._score_col, self._len_col = columns.payloads
        self._count = columns.count
        self._index = start
        return True

    def next_row(self) -> tuple | None:
        while True:
            if self._done:
                return None
            index, count = self._index, self._count
            sid = self.sid
            sid_col = self._sid_col
            while index < count:
                row_sid = sid_col[index]
                if row_sid == sid:
                    self._index = index + 1
                    return (sid, self._docid_col[index], self._end_col[index],
                            self._score_col[index], self._len_col[index])
                if row_sid > sid:
                    self._index = index
                    self._done = True
                    return None
                index += 1
            self._index = index
            if not self._load_next_block():
                self._done = True
                return None

    def take_rows_below(self, bound: Position) -> list[tuple]:
        """Every remaining row of this sid strictly below *bound*, bulk.

        Stops at the first row at or past the bound (or outside the
        sid) without consuming it; crossing into a fresh block charges
        exactly what :meth:`next_row` would.
        """
        rows: list[tuple] = []
        bound_docid, bound_endpos = bound
        while True:
            if self._done:
                return rows
            index, count = self._index, self._count
            sid = self.sid
            sid_col, docid_col = self._sid_col, self._docid_col
            end_col = self._end_col
            score_col, len_col = self._score_col, self._len_col
            while index < count:
                row_sid = sid_col[index]
                if row_sid != sid:
                    if row_sid > sid:
                        self._index = index
                        self._done = True
                        return rows
                    index += 1
                    continue
                docid = docid_col[index]
                if docid > bound_docid:
                    self._index = index
                    return rows
                endpos = end_col[index]
                if docid == bound_docid and endpos >= bound_endpos:
                    self._index = index
                    return rows
                rows.append((sid, docid, endpos,
                             score_col[index], len_col[index]))
                index += 1
            self._index = index
            if not self._load_next_block():
                self._done = True
                return rows

    # -- document-order skips (the WAND access path) -------------------
    def leap_to(self, bound: Position) -> int:
        """Advance so the next row is the first of this sid at or past
        *bound* — ``skip_to``-style advancement.  Blocks wholly below
        the target are leapt via the resident skip directory without
        being decoded (the deep descent lands on exactly one block);
        rows bypassed inside a decoded block count in ``rows_bypassed``.
        Returns the number of undecoded blocks leapt."""
        if self._done:
            return 0
        probe_key = (self.sid, bound[0], bound[1])
        if self._index < self._count:
            sid_col, docid_col = self._sid_col, self._docid_col
            end_col = self._end_col
            lo, hi = self._index, self._count
            steps = 0
            while lo < hi:
                mid = (lo + hi) // 2
                steps += 1
                if (sid_col[mid], docid_col[mid], end_col[mid]) < probe_key:
                    lo = mid + 1
                else:
                    hi = mid
            if steps:
                self._model.compare(steps)
            self.rows_bypassed += lo - self._index
            self._index = lo
            if lo < self._count:
                if sid_col[lo] > self.sid:
                    self._done = True
                return 0
        start = self._block
        count = self._seq.block_count
        if start >= count:
            self._done = True
            return 0
        index = self._seq.find_first_block_ge(probe_key, start=start)
        leapt = index - start
        if index >= count or self._seq.headers[index].first_key[0] > self.sid:
            self._done = True
            self._block = count
            return leapt
        self._block = index
        self._position_at(probe_key)
        return leapt

    def _position_at(self, probe_key: tuple[int, int, int]) -> None:
        """Decode block ``self._block``, positioned at the first row
        whose full key is >= *probe_key*."""
        columns = self._seq.read_block_columns(self._block)
        self._block += 1
        sid_col, docid_col, end_col = columns.keys
        lo, hi = 0, columns.count
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if (sid_col[mid], docid_col[mid], end_col[mid]) < probe_key:
                lo = mid + 1
            else:
                hi = mid
        if steps:
            self._model.compare(steps)
        self._sid_col = sid_col
        self._docid_col = docid_col
        self._end_col = end_col
        self._score_col, self._len_col = columns.payloads
        self._count = columns.count
        self._index = lo
        self._first_block = False
        if lo < columns.count and sid_col[lo] > self.sid:
            self._done = True

    def probe(self, bound: Position) -> tuple[float, Position | None]:
        """Shallow block-max probe: bound the score of this stream's
        rows at or past *bound* without decoding anything.

        Returns ``(max_score, boundary)`` where ``max_score`` is the
        header bound of the block that would hold the first such row and
        *boundary* is the last position that block covers for this sid
        (``None`` when the block runs past the sid, i.e. covers its
        whole tail).  ``(0.0, None)`` when no such row can exist.  The
        bound is sound for every key in ``[bound, boundary]``: each such
        row, if present, lies inside the probed block."""
        if self._done:
            return 0.0, None
        probe_key = (self.sid, bound[0], bound[1])
        headers = self._seq.headers
        if self._index < self._count:
            header = headers[self._block - 1]
            if header.last_key >= probe_key:
                return header.max_score, self._sid_clip(header.last_key)
        index = self._block
        count = self._seq.block_count
        while index < count:
            self._model.compare()
            header = headers[index]
            if header.first_key[0] > self.sid:
                return 0.0, None
            if header.last_key >= probe_key:
                return header.max_score, self._sid_clip(header.last_key)
            index += 1
        return 0.0, None

    def _sid_clip(self, last_key: tuple[int, int, int]) -> Position | None:
        if last_key[0] == self.sid:
            return (last_key[1], last_key[2])
        return None  # block runs past the sid: covers its whole tail

    def skip_tail(self) -> int:
        """Abandon the stream: undecoded blocks that could still hold
        rows of this sid count as skipped; the stream is done."""
        if self._done:
            return 0
        self._done = True
        headers = self._seq.headers
        index = self._block
        count = self._seq.block_count
        while index < count and headers[index].first_key[0] <= self.sid:
            index += 1
        skipped = index - self._block
        if skipped:
            self._model.block_skip(skipped)
        self._block = count
        return skipped
