"""Index iterators: the access paths of the three retrieval strategies.

* :class:`ExtentIterator` — elements of one sid from the Elements table,
  in (docid, endpos) order, with the ERA primitives ``first_element``
  and ``next_element_after`` (paper §3.2);
* :class:`PostingIterator` — positions of one term from the fragmented
  PostingLists table, ending at the ``m-pos`` sentinel;
* :class:`RplIterator` — sorted (descending-score) access over one RPL
  segment, skipping entries whose sid is outside the query (paper §3.3);
  skipped rows are still read and therefore still cost, which is the
  mechanism behind TA losing to Merge on wide-scope lists;
* :class:`ErplIterator` — position-ordered stream over the ERPL ranges
  of one (term, sid set), implemented as a k-way merge over the per-sid
  ranges (ERPL rows are keyed sid-major, paper §2.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..corpus.document import M_POS
from ..index.catalog import IndexCatalog, IndexSegment
from ..index.rpl import RplEntry
from ..storage.table import Table

__all__ = ["ElementSpan", "DUMMY_ELEMENT", "ExtentIterator", "PostingIterator",
           "RplIterator", "ErplIterator"]

Position = tuple[int, int]  # (docid, offset)


@dataclass(frozen=True)
class ElementSpan:
    """An element as the Elements table describes it."""

    sid: int
    docid: int
    endpos: int
    length: int

    @property
    def startpos(self) -> int:
        return self.endpos - self.length

    @property
    def start(self) -> Position:
        return (self.docid, self.startpos)

    @property
    def end(self) -> Position:
        return (self.docid, self.endpos)

    def covers(self, position: Position) -> bool:
        """Strictly-inside test (tag positions make this exact)."""
        return self.start < position < self.end

    @property
    def is_dummy(self) -> bool:
        return self.endpos >= M_POS[1]


#: The "dummy element" the paper returns when an extent is exhausted:
#: end position m-pos, length zero.
DUMMY_ELEMENT = ElementSpan(sid=0, docid=M_POS[0], endpos=M_POS[1], length=0)


class ExtentIterator:
    """Iterates the extent of one sid in document/position order."""

    def __init__(self, elements_table: Table, sid: int):
        self._table = elements_table
        self.sid = sid

    def first_element(self) -> ElementSpan:
        """The first element of the extent, or the dummy when empty."""
        cursor = self._table.seek((self.sid,))
        return self._from_cursor(cursor)

    def next_element_after(self, position: Position) -> ElementSpan:
        """The extent element with the lowest end position > *position*.

        Implemented as a search over the Elements index, exactly as the
        paper describes.  Returns the dummy element when exhausted.
        """
        docid, offset = position
        cursor = self._table.seek((self.sid, docid, offset + 1))
        return self._from_cursor(cursor)

    def _from_cursor(self, cursor) -> ElementSpan:
        if not cursor.valid:
            return DUMMY_ELEMENT
        key = cursor.key
        if key[0] != self.sid:
            return DUMMY_ELEMENT
        row = cursor.value
        return ElementSpan(sid=row[0], docid=row[1], endpos=row[2], length=row[3])

    def scan(self):
        """All elements of the extent, in order (used by tests/examples)."""
        for row in self._table.scan_prefix((self.sid,)):
            yield ElementSpan(sid=row[0], docid=row[1], endpos=row[2], length=row[3])


class PostingIterator:
    """Iterates the positions of one term; yields ``m-pos`` at the end."""

    def __init__(self, postings_table: Table, term: str):
        self._table = postings_table
        self.term = term
        self._cursor = postings_table.seek((term,))
        self._fragment: list[Position] = []
        self._index = 0
        self._exhausted = False

    def next_position(self) -> Position:
        """The next position, or ``m-pos`` forever once exhausted."""
        if self._exhausted:
            return M_POS
        while self._index >= len(self._fragment):
            if not self._cursor.valid or self._cursor.key[0] != self.term:
                # Term absent from the corpus: behave as an empty list.
                self._exhausted = True
                return M_POS
            row = self._cursor.value
            self._fragment = [tuple(pair) for pair in row[3]]
            self._index = 0
            self._cursor.advance()
        position = self._fragment[self._index]
        self._index += 1
        if position == M_POS:
            self._exhausted = True
        return position

    @property
    def exhausted(self) -> bool:
        """True once the m-pos sentinel has been returned."""
        return self._exhausted


class RplIterator:
    """Sorted access over one RPL segment with sid filtering.

    ``next_entry()`` returns entries in descending score order whose sid
    belongs to *sids*, or ``None`` at exhaustion.  ``depth`` counts every
    row read (including skipped ones) and ``last_read_score`` tracks the
    score of the most recent row — the value TA's threshold uses.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 sids: frozenset[int] | set[int]):
        self._segment = segment
        self.term = segment.term
        self._sids = set(sids)
        self._rows = catalog.rpls.scan_prefix((segment.term, segment.segment_id))
        self.depth = 0
        self.skipped = 0
        self.last_read_score = float("inf")
        self.exhausted = False

    @property
    def length(self) -> int:
        return self._segment.entry_count

    def next_entry(self) -> RplEntry | None:
        for row in self._rows:
            self.depth += 1
            score, sid = row[3], row[4]
            self.last_read_score = score
            if sid not in self._sids:
                self.skipped += 1
                continue
            return RplEntry(score, sid, row[5], row[6], row[7])
        self.exhausted = True
        self.last_read_score = 0.0
        return None

    @property
    def upper_bound(self) -> float:
        """Best possible score of any entry not yet returned."""
        if self.exhausted:
            return 0.0
        if self.last_read_score == float("inf"):
            return float("inf")
        return self.last_read_score


class ErplIterator:
    """Position-ordered stream over the ERPL ranges of (term, sids).

    One underlying range scan per sid (each begins with a seek), merged
    by (docid, endpos) with a small in-memory heap — the standard way to
    read a sid-major table in position order.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 sids: frozenset[int] | set[int]):
        self._segment = segment
        self.term = segment.term
        self.rows_read = 0
        self._heap: list[tuple[Position, int, RplEntry]] = []
        self._streams = []
        for stream_id, sid in enumerate(sorted(sids)):
            rows = catalog.erpls.scan_prefix((segment.term, segment.segment_id, sid))
            self._streams.append(rows)
            self._push_from(stream_id)

    def _push_from(self, stream_id: int) -> None:
        try:
            row = next(self._streams[stream_id])
        except StopIteration:
            return
        self.rows_read += 1
        entry = RplEntry(row[5], row[2], row[3], row[4], row[6])
        heapq.heappush(self._heap, ((row[3], row[4]), stream_id, entry))

    @property
    def current(self) -> RplEntry | None:
        """The entry at the iterator's head, or None when exhausted."""
        if not self._heap:
            return None
        return self._heap[0][2]

    @property
    def current_position(self) -> Position:
        if not self._heap:
            return M_POS
        return self._heap[0][0]

    def advance(self) -> None:
        if not self._heap:
            return
        _, stream_id, _ = heapq.heappop(self._heap)
        self._push_from(stream_id)

    @property
    def exhausted(self) -> bool:
        return not self._heap
