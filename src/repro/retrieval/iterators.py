"""Index iterators: the access paths of the three retrieval strategies.

* :class:`ExtentIterator` — elements of one sid in (docid, endpos)
  order, with the ERA primitives ``first_element`` and
  ``next_element_after`` (paper §3.2);
* :class:`PostingIterator` — positions of one term, ending at the
  ``m-pos`` sentinel;
* :class:`RplIterator` — sorted (descending-score) access over one RPL
  segment, skipping entries whose sid is outside the query (paper §3.3);
  skipped entries are still decoded and therefore still cost, which is
  the mechanism behind TA losing to Merge on wide-scope lists;
* :class:`ErplIterator` — position-ordered stream over the ERPL ranges
  of one (term, sid set), implemented as a k-way merge over the per-sid
  ranges (ERPL entries are keyed sid-major, paper §2.2).

Each iterator runs over either the row-store tables (a plain
:class:`~repro.storage.table.Table`) or the block-oriented access paths
(:class:`~repro.index.elements.BlockedElements`,
:class:`~repro.index.postings.BlockedPostings`, and the catalog's
block sequences).  The blocked paths are *batched*: a block is decoded
only when its resident header says it can matter — ``next_element_after``
and the per-sid ERPL streams leap over blocks whose ``last_key``
precedes the probe (``skip_to``), and the RPL path prunes undecoded
tail blocks whose block-max score cannot reach a threshold
(``skip_until_score_below``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from ..corpus.document import M_POS
from ..index.catalog import IndexCatalog, IndexSegment
from ..index.rpl import RplEntry
from ..storage.blocks import BlockSequence
from ..storage.cost import CostModel
from ..storage.table import Table

__all__ = ["ElementSpan", "DUMMY_ELEMENT", "ExtentIterator", "PostingIterator",
           "RplIterator", "ErplIterator"]

Position = tuple[int, int]  # (docid, offset)


@dataclass(frozen=True)
class ElementSpan:
    """An element as the Elements table describes it."""

    sid: int
    docid: int
    endpos: int
    length: int

    @property
    def startpos(self) -> int:
        return self.endpos - self.length

    @property
    def start(self) -> Position:
        return (self.docid, self.startpos)

    @property
    def end(self) -> Position:
        return (self.docid, self.endpos)

    def covers(self, position: Position) -> bool:
        """Strictly-inside test (tag positions make this exact)."""
        return self.start < position < self.end

    @property
    def is_dummy(self) -> bool:
        return self.endpos >= M_POS[1]


#: The "dummy element" the paper returns when an extent is exhausted:
#: end position m-pos, length zero.
DUMMY_ELEMENT = ElementSpan(sid=0, docid=M_POS[0], endpos=M_POS[1], length=0)


class ExtentIterator:
    """Iterates the extent of one sid in document/position order.

    Accepts either the Elements :class:`Table` (row-at-a-time seeks) or
    a :class:`~repro.index.elements.BlockedElements` access path, where
    each probe bisects the resident skip directory and decodes at most
    one block.
    """

    def __init__(self, elements: object, sid: int) -> None:
        self.sid = sid
        if isinstance(elements, Table):
            self._table = elements
            self._seq = None
            self._model = None
        else:
            self._table = None
            self._seq = elements.sequence(sid)
            self._model = elements.cost_model
            self._block = 0

    # -- row-store path ------------------------------------------------
    def _from_cursor(self, cursor: object) -> ElementSpan:
        if not cursor.valid:
            return DUMMY_ELEMENT
        key = cursor.key
        if key[0] != self.sid:
            return DUMMY_ELEMENT
        row = cursor.value
        return ElementSpan(sid=row[0], docid=row[1], endpos=row[2], length=row[3])

    # -- shared API ----------------------------------------------------
    def first_element(self) -> ElementSpan:
        """The first element of the extent, or the dummy when empty."""
        if self._table is not None:
            cursor = self._table.seek((self.sid,))
            return self._from_cursor(cursor)
        self._model.seek()
        if self._seq is None or self._seq.block_count == 0:
            return DUMMY_ELEMENT
        self._block = 0
        docid, endpos, length = self._seq.read_block(0)[0]
        return ElementSpan(sid=self.sid, docid=docid, endpos=endpos,
                           length=length)

    def next_element_after(self, position: Position) -> ElementSpan:
        """The extent element with the lowest end position > *position*.

        Implemented as a search over the Elements index, exactly as the
        paper describes.  Returns the dummy element when exhausted.  On
        the blocked path the search bisects the skip directory first,
        so blocks ending before *position* are never decoded.
        """
        if self._table is not None:
            docid, offset = position
            cursor = self._table.seek((self.sid, docid, offset + 1))
            return self._from_cursor(cursor)
        return self.skip_to(position)

    def skip_to(self, position: Position) -> ElementSpan:
        """Blocked-path probe: leap the skip directory, decode one block."""
        docid, offset = position
        key = (docid, offset + 1)
        self._model.seek()
        seq = self._seq
        if seq is None or seq.block_count == 0:
            return DUMMY_ELEMENT
        start = self._block
        if start > 0 and key <= seq.headers[start - 1].last_key:
            start = 0  # non-monotone probe: restart the directory search
        index = seq.find_first_block_ge(key, start=start)
        if index >= seq.block_count:
            self._block = seq.block_count - 1
            return DUMMY_ELEMENT
        self._block = index
        entries = seq.read_block(index)
        lo, hi = 0, len(entries)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if entries[mid][:2] < key:
                lo = mid + 1
            else:
                hi = mid
        if steps:
            self._model.compare(steps)
        docid, endpos, length = entries[lo]
        return ElementSpan(sid=self.sid, docid=docid, endpos=endpos,
                           length=length)

    def scan(self) -> Iterator[ElementSpan]:
        """All elements of the extent, in order (used by tests/examples)."""
        if self._table is not None:
            for row in self._table.scan_prefix((self.sid,)):
                yield ElementSpan(sid=row[0], docid=row[1], endpos=row[2],
                                  length=row[3])
            return
        if self._seq is None:
            return
        # Block-by-block through the charged read path: a full scan
        # must cost exactly what decoding every block costs — the
        # uncharged entries() bulk decode is for offline maintenance.
        for index in range(self._seq.block_count):
            for docid, endpos, length in self._seq.read_block(index):
                yield ElementSpan(sid=self.sid, docid=docid, endpos=endpos,
                                  length=length)


class PostingIterator:
    """Iterates the positions of one term; yields ``m-pos`` at the end.

    Accepts either the PostingLists :class:`Table` or a
    :class:`~repro.index.postings.BlockedPostings` access path, where
    whole fragments are decoded as single compressed blocks.
    """

    def __init__(self, postings: object, term: str) -> None:
        self.term = term
        self._fragment: list[Position] = []
        self._index = 0
        self._exhausted = False
        if isinstance(postings, Table):
            self._cursor = postings.seek((term,))
            self._seq = None
        else:
            self._cursor = None
            self._seq = postings.sequence(term)
            self._block = 0
            postings.cost_model.seek()

    def next_position(self) -> Position:
        """The next position, or ``m-pos`` forever once exhausted."""
        if self._exhausted:
            return M_POS
        while self._index >= len(self._fragment):
            if not self._load_fragment():
                self._exhausted = True
                return M_POS
            self._index = 0
        position = self._fragment[self._index]
        self._index += 1
        if position == M_POS:
            self._exhausted = True
        return position

    def _load_fragment(self) -> bool:
        if self._cursor is not None:
            if not self._cursor.valid or self._cursor.key[0] != self.term:
                # Term absent from the corpus: behave as an empty list.
                return False
            row = self._cursor.value
            self._fragment = [tuple(pair) for pair in row[3]]
            self._cursor.advance()
            return True
        if self._seq is None or self._block >= self._seq.block_count:
            return False
        self._fragment = self._seq.read_block(self._block)
        self._block += 1
        return True

    @property
    def exhausted(self) -> bool:
        """True once the m-pos sentinel has been returned."""
        return self._exhausted


class _RplRunCursor:
    """Sequential charged reader over one RPL run (base or delta).

    Mirrors the single-run iterator's charging exactly: one positioning
    seek on the first decode, ``read_block`` per block opened, and
    block-skip accounting when the tail is pruned.
    """

    def __init__(self, sequence: BlockSequence, cost_model: CostModel) -> None:
        self._seq = sequence
        self._model = cost_model
        self._block = 0
        self._entries: list[tuple] = []
        self._index = 0
        self._seeked = False
        self.last_read_score = float("inf")

    def peek(self) -> tuple | None:
        """The next raw row without consuming it, or ``None`` when the
        run is drained (decodes the next block on demand)."""
        while self._index >= len(self._entries):
            if self._block >= self._seq.block_count:
                return None
            if not self._seeked:
                self._model.seek()
                self._seeked = True
            self._entries = self._seq.read_block(self._block)
            self._block += 1
            self._index = 0
        return self._entries[self._index]

    def take(self) -> tuple:
        row = self._entries[self._index]
        self._index += 1
        self.last_read_score = row[1]
        return row

    @property
    def drained(self) -> bool:
        return (self._index >= len(self._entries)
                and self._block >= self._seq.block_count)

    @property
    def bound(self) -> float:
        """Best possible score of this run's unreturned entries."""
        if self._index < len(self._entries):
            return self.last_read_score
        if self._block < self._seq.block_count:
            return min(self._seq.headers[self._block].max_score,
                       self.last_read_score)
        return 0.0

    def skip_tail(self, threshold: float) -> int:
        """Prune undecoded tail blocks whose block-max rules them out."""
        count = self._seq.block_count
        if self._block >= count:
            return 0
        if self._seq.headers[self._block].max_score >= threshold:
            return 0
        skipped = count - self._block
        self._model.block_skip(skipped)
        self._block = count
        return skipped


class RplIterator:
    """Sorted access over one RPL segment with sid filtering.

    ``next_entry()`` returns entries in descending score order whose sid
    belongs to *sids*, or ``None`` at exhaustion.  ``depth`` counts every
    entry decoded (including skipped ones) and ``last_read_score`` tracks
    the score of the most recent entry — the value TA's threshold uses.

    The segment is stored as compressed blocks: :meth:`next_block`
    decodes one block at a time, :attr:`upper_bound` tightens to the
    next undecoded block's header ``max_score`` at block boundaries (the
    block-max bound), and :meth:`skip_until_score_below` prunes the
    undecoded tail once no remaining block can matter.

    A segment carrying LSM delta runs (appended by ``add_document``) is
    read through a small k-way merge over per-run cursors: each run is
    individually score-descending with its own block-max directory, so
    always taking the best per-run head reproduces the exact global
    descending order, and the merged ``upper_bound`` — the max of the
    per-run bounds — stays sound for TA.  A segment with no deltas
    takes the original single-run path unchanged.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 sids: frozenset[int] | set[int]) -> None:
        self._segment = segment
        self.term = segment.term
        self._sids = set(sids)
        runs = catalog.runs_for(segment)
        self._seq = runs[0]
        self._model = catalog.cost_model
        self._cursors = ([_RplRunCursor(run, self._model) for run in runs]
                         if len(runs) > 1 else [])
        self._block = 0
        self._entries: list[tuple] = []
        self._index = 0
        self._seeked = False
        self.depth = 0
        self.skipped = 0
        self.last_read_score = float("inf")
        self.exhausted = False

    @property
    def length(self) -> int:
        return self._segment.entry_count

    def next_block(self) -> list[tuple] | None:
        """Decode the next block of raw ``(ir, score, sid, ...)`` rows."""
        if self._block >= self._seq.block_count:
            return None
        if not self._seeked:
            # Positioning at the head of the list is the one random I/O
            # sorted access pays, matching the row-store scan's seek.
            self._model.seek()
            self._seeked = True
        entries = self._seq.read_block(self._block)
        self._block += 1
        return entries

    def next_entry(self) -> RplEntry | None:
        if self._cursors:
            return self._next_entry_merged()
        while True:
            if self._index >= len(self._entries):
                block = self.next_block()
                if block is None:
                    self.exhausted = True
                    self.last_read_score = 0.0
                    return None
                self._entries = block
                self._index = 0
            row = self._entries[self._index]
            self._index += 1
            self.depth += 1
            score, sid = row[1], row[2]
            self.last_read_score = score
            if sid not in self._sids:
                self.skipped += 1
                continue
            return RplEntry(score, sid, row[3], row[4], row[5])

    def _next_entry_merged(self) -> RplEntry | None:
        while True:
            best: _RplRunCursor | None = None
            best_key: tuple[float, int, int] | None = None
            for cursor in self._cursors:
                row = cursor.peek()
                if row is None:
                    continue
                key = (-row[1], row[3], row[4])
                if best_key is None or key < best_key:
                    best, best_key = cursor, key
            if best is None:
                self.exhausted = True
                self.last_read_score = 0.0
                return None
            row = best.take()
            self.depth += 1
            score, sid = row[1], row[2]
            self.last_read_score = score
            if sid not in self._sids:
                self.skipped += 1
                continue
            return RplEntry(score, sid, row[3], row[4], row[5])

    def skip_until_score_below(self, threshold: float) -> int:
        """Prune undecoded tail blocks that block-max rules out.

        Sound because every run is score-descending: if a run's next
        undecoded block's ``max_score`` is below *threshold*, so is
        every entry after it in that run.  Returns the number of blocks
        skipped; the skip directory is resident, so pruning is free
        except for the counter.
        """
        if self._cursors:
            skipped = sum(cursor.skip_tail(threshold)
                          for cursor in self._cursors)
            if all(cursor.drained for cursor in self._cursors):
                self.exhausted = True
                self.last_read_score = 0.0
            return skipped
        count = self._seq.block_count
        if self._block >= count:
            return 0
        if self._seq.headers[self._block].max_score >= threshold:
            return 0
        skipped = count - self._block
        self._model.block_skip(skipped)
        self._block = count
        if self._index >= len(self._entries):
            # Nothing decoded remains either: the list is finished.
            self.exhausted = True
            self.last_read_score = 0.0
        return skipped

    @property
    def upper_bound(self) -> float:
        """Best possible score of any entry not yet returned.

        Within a block this is the classic last-read score; at a block
        boundary the next header's ``max_score`` is a tighter sound
        bound (block-max), letting TA stop without decoding the block.
        With delta runs the bound is the max of the per-run bounds —
        any unreturned entry lives in some run, so the max is sound.
        """
        if self.exhausted:
            return 0.0
        if self._cursors:
            return max(cursor.bound for cursor in self._cursors)
        if self._index < len(self._entries):
            return self.last_read_score
        if self._block < self._seq.block_count:
            bound = self._seq.headers[self._block].max_score
            return min(bound, self.last_read_score)
        return self.last_read_score


class ErplIterator:
    """Position-ordered stream over the ERPL ranges of (term, sids).

    One underlying block stream per sid (each begins with a seek and a
    skip-directory search that leaps straight to the sid's first block),
    merged by (docid, endpos) with a small in-memory heap — the standard
    way to read a sid-major layout in position order.

    A segment with LSM delta runs contributes one stream per (sid, run)
    pair to the same heap; entry keys are unique across runs (deltas
    carry new docids), so the merged order is exactly the order a
    compacted segment would stream.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 sids: frozenset[int] | set[int]) -> None:
        self._segment = segment
        self.term = segment.term
        self.rows_read = 0
        self._heap: list[tuple[Position, int, RplEntry]] = []
        self._streams = []
        runs = catalog.runs_for(segment)
        stream_id = 0
        for sid in sorted(sids):
            for sequence in runs:
                stream = _ErplSidStream(sequence, sid, catalog.cost_model)
                self._streams.append(stream)
                self._push_from(stream_id)
                stream_id += 1

    def _push_from(self, stream_id: int) -> None:
        row = self._streams[stream_id].next_row()
        if row is None:
            return
        self.rows_read += 1
        sid, docid, endpos, score, length = row
        entry = RplEntry(score, sid, docid, endpos, length)
        heapq.heappush(self._heap, ((docid, endpos), stream_id, entry))

    @property
    def current(self) -> RplEntry | None:
        """The entry at the iterator's head, or None when exhausted."""
        if not self._heap:
            return None
        return self._heap[0][2]

    @property
    def current_position(self) -> Position:
        if not self._heap:
            return M_POS
        return self._heap[0][0]

    def advance(self) -> None:
        if not self._heap:
            return
        _, stream_id, _ = heapq.heappop(self._heap)
        self._push_from(stream_id)

    @property
    def exhausted(self) -> bool:
        return not self._heap


class _ErplSidStream:
    """Sequential reader over one sid's range of an ERPL block sequence."""

    def __init__(self, sequence: BlockSequence, sid: int,
                 cost_model: CostModel) -> None:
        self.sid = sid
        self._seq = sequence
        self._model = cost_model
        self._entries: list[tuple] = []
        self._index = 0
        self._done = sequence.block_count == 0
        self._model.seek()
        if self._done:
            self._block = 0
            return
        # Leap the skip directory to the first block that can hold the sid.
        self._block = sequence.find_first_block_ge((sid, 0, 0))
        self._first_block = True

    def next_row(self) -> tuple | None:
        while True:
            if self._done:
                return None
            if self._index < len(self._entries):
                row = self._entries[self._index]
                if row[0] == self.sid:
                    self._index += 1
                    return row
                if row[0] > self.sid:
                    self._done = True
                    return None
                self._index += 1
                continue
            if self._block >= self._seq.block_count:
                self._done = True
                return None
            header = self._seq.headers[self._block]
            if header.first_key[0] > self.sid:
                self._done = True
                return None
            entries = self._seq.read_block(self._block)
            self._block += 1
            start = 0
            if self._first_block:
                # Bisect past smaller-sid entries sharing the block.
                self._first_block = False
                key = (self.sid, 0, 0)
                lo, hi = 0, len(entries)
                steps = 0
                while lo < hi:
                    mid = (lo + hi) // 2
                    steps += 1
                    if entries[mid][:3] < key:
                        lo = mid + 1
                    else:
                        hi = mid
                if steps:
                    self._model.compare(steps)
                start = lo
            self._entries = entries
            self._index = start
