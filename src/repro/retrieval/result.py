"""Result containers for query evaluation.

Every evaluation returns a :class:`ResultSet`: ranked hits plus an
:class:`EvaluationStats` record of *simulated* cost (the reproduction's
substitute for the paper's wall-clock seconds — see
:mod:`repro.storage.cost`) and per-strategy diagnostics such as how deep
into each RPL the threshold algorithm read (paper §5.2 discusses this
depth explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..scoring.combine import ScoredHit

__all__ = ["EvaluationStats", "ResultSet"]


@dataclass
class EvaluationStats:
    """Cost and diagnostics for one strategy run."""

    method: str
    #: Simulated time including heap maintenance (paper: TA / ERA / Merge).
    cost: float = 0.0
    #: Simulated time with heap maintenance suppressed (paper: ITA).
    ideal_cost: float = 0.0
    #: Rows read from each term's sorted list: term -> depth.
    list_depths: dict[str, int] = field(default_factory=dict)
    #: Total length of each term's sorted list (to detect full reads).
    list_lengths: dict[str, int] = field(default_factory=dict)
    #: Rows read but skipped because their sid was outside the query.
    rows_skipped: int = 0
    #: Candidate elements touched.
    candidates: int = 0
    #: True when TA terminated via its stopping condition before exhaustion.
    early_stop: bool = False
    #: Random-access probes performed (TA-RA only).
    random_accesses: int = 0
    #: Compressed blocks fetched from storage (block-cache misses).
    blocks_read: int = 0
    #: Blocks decompressed (each charged once per fetch).
    blocks_decoded: int = 0
    #: Blocks pruned via resident headers without being decoded.
    blocks_skipped: int = 0
    #: Entries decoded across all blocks (the batched TUPLE_READ analogue).
    entries_decoded: int = 0
    #: Shards that actually evaluated work for this query (sharded runs).
    shards_probed: int = 0
    #: Shards terminated early by the distributed-TA coordinator.
    shards_pruned: int = 0
    #: Shards dropped because they exceeded the per-shard deadline.
    shards_timed_out: int = 0
    #: True when a fail-soft run returned partial results (shard timeout).
    degraded: bool = False
    #: Per-shard breakdown (one dict per shard, coordinator runs only).
    shard_stats: list[dict] = field(default_factory=list)
    #: Replica read leases granted while serving this query.
    replica_reads: int = 0
    #: Reads transparently retried on a sibling after a replica fault.
    replica_failovers: int = 0
    #: WAND pivot rounds that leapt a list instead of evaluating a doc.
    pivot_advances: int = 0
    #: Blocks leapt undecoded because the shallow block-max check failed.
    blocks_skipped_shallow: int = 0
    #: Documents fully evaluated by the DAAT loop (WAND only).
    docs_evaluated: int = 0

    def record_block_io(self, spent: object) -> None:
        """Copy block-level counters from a cost-snapshot difference."""
        self.blocks_read = spent.blocks_read
        self.blocks_decoded = spent.blocks_decoded
        self.blocks_skipped = spent.blocks_skipped
        self.entries_decoded = spent.entries_decoded

    def read_entire_lists(self) -> bool:
        """Did the run consume every sorted list to the end? (paper §5.2)"""
        if not self.list_lengths:
            return False
        return all(self.list_depths.get(term, 0) >= length
                   for term, length in self.list_lengths.items())

    def merge_with(self, other: "EvaluationStats") -> None:
        """Accumulate another clause's stats into this one (same method)."""
        self.cost += other.cost
        self.ideal_cost += other.ideal_cost
        self.rows_skipped += other.rows_skipped
        self.candidates += other.candidates
        self.early_stop = self.early_stop or other.early_stop
        self.blocks_read += other.blocks_read
        self.blocks_decoded += other.blocks_decoded
        self.blocks_skipped += other.blocks_skipped
        self.entries_decoded += other.entries_decoded
        self.shards_probed += other.shards_probed
        self.shards_pruned += other.shards_pruned
        self.shards_timed_out += other.shards_timed_out
        self.degraded = self.degraded or other.degraded
        self.replica_reads += other.replica_reads
        self.replica_failovers += other.replica_failovers
        self.pivot_advances += other.pivot_advances
        self.blocks_skipped_shallow += other.blocks_skipped_shallow
        self.docs_evaluated += other.docs_evaluated
        self.shard_stats.extend(other.shard_stats)
        for term, depth in other.list_depths.items():
            self.list_depths[term] = self.list_depths.get(term, 0) + depth
        for term, length in other.list_lengths.items():
            self.list_lengths[term] = self.list_lengths.get(term, 0) + length


@dataclass
class ResultSet:
    """Ranked answers to one query."""

    hits: list[ScoredHit]
    stats: EvaluationStats
    k: int | None = None  # None means "all answers"

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[ScoredHit]:
        return iter(self.hits)

    def __getitem__(self, index: int) -> ScoredHit:
        return self.hits[index]

    def top(self, k: int) -> list[ScoredHit]:
        return self.hits[:k]

    def element_keys(self) -> list[tuple[int, int]]:
        return [hit.element_key() for hit in self.hits]

    def scores(self) -> list[float]:
        return [hit.score for hit in self.hits]
