"""TA-RA — the classic threshold algorithm with random accesses.

Fagin, Lotem and Naor's TA (the paper's reference [6]) interleaves
sorted access with *random access*: each element surfacing in one
term's relevance-ordered list is immediately resolved by probing the
other terms' scores, so its final score is known at once and the
classic stopping rule applies — halt when the k-th best final score
reaches the threshold ``Σ_j w_j · high_j``.

TReX's production TA (:mod:`repro.retrieval.ta`) follows TopX's
no-random-access discipline instead; this module implements the
textbook variant so the trade-off is measurable: TA-RA stops at
shallower sorted depths but pays one B+-tree probe per (candidate,
other term).  Random accesses go against the ERPL table (keyed by
``(token, segment, sid, docid, endpos)``), so TA-RA requires *both*
index kinds — exactly the doubled storage the paper's §4 discussion of
parallel evaluation weighs.
"""

from __future__ import annotations

from ..index.catalog import IndexCatalog, IndexSegment
from ..scoring.combine import ScoredHit
from ..storage.cost import CostModel
from .heap import TopKHeap
from .iterators import RplIterator
from .result import EvaluationStats

__all__ = ["ta_ra_retrieve"]


def _random_access(catalog: IndexCatalog, segment: IndexSegment,
                   sid: int, docid: int, endpos: int) -> float:
    """Probe one (term, element) score from the ERPL; 0 when absent."""
    score = catalog.erpl_probe(segment, sid, docid, endpos)
    return 0.0 if score is None else score


def ta_ra_retrieve(catalog: IndexCatalog,
                   rpl_segments: dict[str, IndexSegment],
                   erpl_segments: dict[str, IndexSegment],
                   sids: frozenset[int] | set[int],
                   k: int,
                   cost_model: CostModel,
                   term_weights: dict[str, float] | None = None,
                   ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Fagin's TA with immediate random access.

    ``rpl_segments`` drive sorted access; ``erpl_segments`` serve the
    random probes (both per query term).
    """
    if k < 1:
        raise ValueError("TA-RA requires k >= 1")
    if set(rpl_segments) != set(erpl_segments):
        raise ValueError("TA-RA needs an RPL and an ERPL per term")
    weights = {term: 1.0 for term in rpl_segments}
    if term_weights:
        weights.update({t: w for t, w in term_weights.items() if t in weights})

    snapshot = cost_model.snapshot()
    iterators = {term: RplIterator(catalog, segment, sids)
                 for term, segment in rpl_segments.items()}
    resolved: dict[tuple[int, int], ScoredHit] = {}
    heap = TopKHeap(k, cost_model)
    random_accesses = 0
    early_stop = False

    def threshold() -> float:
        return sum(weights[t] * it.upper_bound for t, it in iterators.items())

    while True:
        progressed = False
        for term, iterator in iterators.items():
            if iterator.exhausted:
                continue
            entry = iterator.next_entry()
            if entry is None:
                continue
            progressed = True
            key = entry.element_key()
            if key in resolved:
                continue  # already fully scored by an earlier probe round
            score = weights[term] * entry.score
            for other, other_segment in erpl_segments.items():
                if other == term:
                    continue
                random_accesses += 1
                score += weights[other] * _random_access(
                    catalog, other_segment, entry.sid, entry.docid,
                    entry.endpos)
            cost_model.score_combine()
            resolved[key] = ScoredHit(score=score, docid=entry.docid,
                                      end_pos=entry.endpos, sid=entry.sid,
                                      length=entry.length)
            heap.offer(score, key)

        if not progressed:
            break
        # Classic TA stop: the k-th resolved score reaches the threshold.
        cost_model.compare()
        floor = heap.min_score()
        if floor != float("-inf") and floor >= threshold() - 1e-12:
            early_stop = True
            break

    hits = [resolved[key] for _, key in heap.items()]
    hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="ta-ra", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(resolved),
                            early_stop=early_stop)
    stats.record_block_io(spent)
    for term, iterator in iterators.items():
        stats.list_depths[term] = iterator.depth
        stats.list_lengths[term] = iterator.length
        stats.rows_skipped += iterator.skipped
    stats.random_accesses = random_accesses
    return hits, stats
