"""ERA — the Exhaustive Retrieval Algorithm (paper Figure 2).

ERA evaluates one retrieval task (a sid list and a term list) using
only the Elements and PostingLists tables: it sweeps all term positions
in global (docid, offset) order, maintaining one extent iterator per
sid and a ``C[m][n]`` term-frequency matrix, and emits each extent
element together with its term-frequency vector once the sweep passes
its end position.

This is the strategy that always works (no redundant indexes needed)
but pays for reading *every occurrence* of every query term — the
baseline the paper's figures compare TA and Merge against.  It is also
the generator used to materialize RPL and ERPL tables ("TReX also uses
ERA for generating or extending the RPLs and ERPLs tables", §3.2);
:func:`era_scored_entries` is that path.
"""

from __future__ import annotations

from ..corpus.document import M_POS
from ..index.rpl import RplEntry
from ..scoring.combine import ScoredHit
from ..scoring.scorers import ElementScorer
from ..storage.cost import CostModel
from ..storage.table import Table
from .iterators import ElementSpan, ExtentIterator, PostingIterator
from .result import EvaluationStats

__all__ = ["era_raw", "era_retrieve", "era_scored_entries"]


def era_raw(elements_table: Table, postings_table: Table,
            sids: list[int], terms: list[str],
            cost_model: CostModel) -> list[tuple[ElementSpan, list[int]]]:
    """The literal algorithm of Figure 2.

    Returns ``(element, tf_vector)`` pairs where ``tf_vector[j]`` is the
    number of occurrences of ``terms[j]`` strictly inside the element.
    Elements are emitted in the order their end positions are passed.
    """
    if not sids or not terms:
        return []
    results: list[tuple[ElementSpan, list[int]]] = []

    extent_iterators = [ExtentIterator(elements_table, sid) for sid in sids]
    elements = [iterator.first_element() for iterator in extent_iterators]
    counts = [[0] * len(terms) for _ in sids]

    posting_iterators = [PostingIterator(postings_table, term) for term in terms]
    positions = [iterator.next_position() for iterator in posting_iterators]

    while True:
        # x: index of the minimal current position (line 12)
        x = min(range(len(terms)), key=lambda j: positions[j])
        pos_x = positions[x]
        cost_model.compare(len(terms))

        for i in range(len(sids)):
            element = elements[i]
            cost_model.compare()
            if pos_x < element.start:
                continue  # line 15: do nothing
            if element.covers(pos_x):
                counts[i][x] += 1  # line 17
                continue
            if element.end < pos_x:
                # lines 19-23: flush the finished element
                if any(counts[i]):
                    results.append((element, counts[i][:]))
                    counts[i] = [0] * len(terms)
                # line 24: advance past pos_x
                elements[i] = extent_iterators[i].next_element_after(pos_x)
                if elements[i].covers(pos_x):
                    counts[i][x] += 1  # lines 25-27

        # line 31: the repeat..until loop stops once every term reached
        # m-pos — i.e. after the iteration that *processed* pos_x == m-pos
        # (which is the minimum only when all positions are m-pos), whose
        # flush above emitted every remaining element.
        if pos_x == M_POS:
            break
        positions[x] = posting_iterators[x].next_position()

    return results


def era_retrieve(elements_table: Table, postings_table: Table,
                 sids: list[int], terms: list[str],
                 scorer: ElementScorer, cost_model: CostModel,
                 term_weights: dict[str, float] | None = None,
                 ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Run ERA and score the relevant elements.

    The score of an element is the weighted sum of per-term scores —
    the same aggregation RPL/ERPL-based strategies use, so all three
    strategies agree on scores.
    """
    snapshot = cost_model.snapshot()
    raw = era_raw(elements_table, postings_table, sorted(sids), list(terms),
                  cost_model)
    hits: list[ScoredHit] = []
    for element, tf_vector in raw:
        score = 0.0
        for term, tf in zip(terms, tf_vector):
            if tf == 0:
                continue
            weight = 1.0 if term_weights is None else term_weights.get(term, 1.0)
            score += weight * scorer.score(term, tf, element.length)
            cost_model.score_combine()
        if score <= 0.0:
            continue
        hits.append(ScoredHit(score=score, docid=element.docid,
                              end_pos=element.endpos, sid=element.sid,
                              length=element.length))
    cost_model.sort(len(hits))
    hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="era", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(hits))
    stats.record_block_io(spent)
    return hits, stats


def era_scored_entries(elements_table: Table, postings_table: Table,
                       sids: list[int], term: str, scorer: ElementScorer,
                       cost_model: CostModel) -> list[RplEntry]:
    """Generate RPL entries for one term via ERA (paper §3.2).

    Equivalent to :func:`repro.index.rpl.compute_rpl_entries` but driven
    through the index tables; tested to agree with the direct builder.
    """
    raw = era_raw(elements_table, postings_table, sorted(sids), [term], cost_model)
    entries = []
    for element, tf_vector in raw:
        score = scorer.score(term, tf_vector[0], element.length)
        if score <= 0.0:
            continue
        entries.append(RplEntry(score, element.sid, element.docid,
                                element.endpos, element.length))
    entries.sort(key=lambda e: (-e.score, e.docid, e.endpos))
    return entries
