"""ERA — the Exhaustive Retrieval Algorithm (paper Figure 2).

ERA evaluates one retrieval task (a sid list and a term list) using
only the Elements and PostingLists tables: it sweeps all term positions
in global (docid, offset) order, maintaining one extent iterator per
sid and a ``C[m][n]`` term-frequency matrix, and emits each extent
element together with its term-frequency vector once the sweep passes
its end position.

This is the strategy that always works (no redundant indexes needed)
but pays for reading *every occurrence* of every query term — the
baseline the paper's figures compare TA and Merge against.  It is also
the generator used to materialize RPL and ERPL tables ("TReX also uses
ERA for generating or extending the RPLs and ERPLs tables", §3.2);
:func:`era_scored_entries` is that path.
"""

from __future__ import annotations

from ..corpus.document import M_POS
from ..index.rpl import RplEntry
from ..scoring.combine import ScoredHit
from ..scoring.scorers import ElementScorer
from ..storage.cost import CostModel
from ..storage.table import Table
from .iterators import ElementSpan, ExtentIterator, PostingIterator
from .result import EvaluationStats

__all__ = ["era_raw", "era_retrieve", "era_scored_entries"]


def era_raw(elements_table: Table, postings_table: Table,
            sids: list[int], terms: list[str],
            cost_model: CostModel) -> list[tuple[ElementSpan, list[int]]]:
    """The literal algorithm of Figure 2.

    Returns ``(element, tf_vector)`` pairs where ``tf_vector[j]`` is the
    number of occurrences of ``terms[j]`` strictly inside the element.
    Elements are emitted in the order their end positions are passed.
    """
    if not sids or not terms:
        return []
    results: list[tuple[ElementSpan, list[int]]] = []

    extent_iterators = [ExtentIterator(elements_table, sid) for sid in sids]
    elements = [iterator.first_element() for iterator in extent_iterators]
    counts = [[0] * len(terms) for _ in sids]

    # Posting positions are consumed fragment-at-a-time: each term keeps
    # the current decoded chunk and an inline cursor, refilled through
    # the batch access path — one PostingIterator call per fragment
    # instead of one per position; decode charges are per fragment
    # opened, exactly as before.
    posting_iterators = [PostingIterator(postings_table, term) for term in terms]
    buffers: list[list[tuple[int, int]]] = []
    cursors: list[int] = []
    positions: list[tuple[int, int]] = []
    for iterator in posting_iterators:
        chunk = iterator.next_chunk()
        if chunk is None:
            chunk = [M_POS]  # term absent: behave as an empty list
        buffers.append(chunk)
        cursors.append(0)
        positions.append(chunk[0])

    while True:
        # x: index of the minimal current position (line 12)
        x = min(range(len(terms)), key=lambda j: positions[j])
        pos_x = positions[x]
        cost_model.compare(len(terms))

        for i in range(len(sids)):
            element = elements[i]
            cost_model.compare()
            if pos_x < element.start:
                continue  # line 15: do nothing
            if element.covers(pos_x):
                counts[i][x] += 1  # line 17
                continue
            if element.end < pos_x:
                # lines 19-23: flush the finished element
                if any(counts[i]):
                    results.append((element, counts[i][:]))
                    counts[i] = [0] * len(terms)
                # line 24: advance past pos_x
                elements[i] = extent_iterators[i].next_element_after(pos_x)
                if elements[i].covers(pos_x):
                    counts[i][x] += 1  # lines 25-27

        # line 31: the repeat..until loop stops once every term reached
        # m-pos — i.e. after the iteration that *processed* pos_x == m-pos
        # (which is the minimum only when all positions are m-pos), whose
        # flush above emitted every remaining element.
        if pos_x == M_POS:
            break
        cursor = cursors[x] + 1
        while cursor >= len(buffers[x]):
            chunk = posting_iterators[x].next_chunk()
            if chunk is None:
                chunk = [M_POS]  # stored lists end with the sentinel
            buffers[x] = chunk
            cursor = 0
        cursors[x] = cursor
        positions[x] = buffers[x][cursor]

    return results


def era_retrieve(elements_table: Table, postings_table: Table,
                 sids: list[int], terms: list[str],
                 scorer: ElementScorer, cost_model: CostModel,
                 term_weights: dict[str, float] | None = None,
                 ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Run ERA and score the relevant elements.

    The score of an element is the weighted sum of per-term scores —
    the same aggregation RPL/ERPL-based strategies use, so all three
    strategies agree on scores.
    """
    snapshot = cost_model.snapshot()
    raw = era_raw(elements_table, postings_table, sorted(sids), list(terms),
                  cost_model)
    # Columnar scoring: one score_block call per term over the emitted
    # elements' tf/length columns, accumulated per element in term order
    # — the same additions in the same order as the per-element loop,
    # so aggregate scores are bitwise identical, and one score-combine
    # charge per nonzero contribution exactly as before.
    totals = [0.0] * len(raw)
    if raw:
        lengths = [element.length for element, _ in raw]
        combines = 0
        for j, term in enumerate(terms):
            weight = (1.0 if term_weights is None
                      else term_weights.get(term, 1.0))
            tfs = [tf_vector[j] for _, tf_vector in raw]
            scores = scorer.score_block(term, tfs, lengths)
            for i, tf in enumerate(tfs):
                if tf == 0:
                    continue
                totals[i] += weight * scores[i]
                combines += 1
        if combines:
            cost_model.score_combine(combines)
    hits: list[ScoredHit] = []
    for (element, _), score in zip(raw, totals):
        if score <= 0.0:
            continue
        hits.append(ScoredHit(score=score, docid=element.docid,
                              end_pos=element.endpos, sid=element.sid,
                              length=element.length))
    cost_model.sort(len(hits))
    hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="era", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(hits))
    stats.record_block_io(spent)
    return hits, stats


def era_scored_entries(elements_table: Table, postings_table: Table,
                       sids: list[int], term: str, scorer: ElementScorer,
                       cost_model: CostModel) -> list[RplEntry]:
    """Generate RPL entries for one term via ERA (paper §3.2).

    Equivalent to :func:`repro.index.rpl.compute_rpl_entries` but driven
    through the index tables; tested to agree with the direct builder.
    """
    raw = era_raw(elements_table, postings_table, sorted(sids), [term], cost_model)
    if not raw:
        return []
    scores = scorer.score_block(term, [tf_vector[0] for _, tf_vector in raw],
                                [element.length for element, _ in raw])
    entries = []
    for (element, _), score in zip(raw, scores):
        if score <= 0.0:
            continue
        entries.append(RplEntry(score, element.sid, element.docid,
                                element.endpos, element.length))
    entries.sort(key=lambda e: (-e.score, e.docid, e.endpos))
    return entries
