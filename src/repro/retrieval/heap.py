"""The instrumented top-k heap used by the threshold algorithm.

The paper's §5 makes heap management a first-class experimental
variable: TA's running time is dominated by it for small ``k``, and
*ITA* is defined as TA with the clock paused during heap operations.
This heap reproduces both behaviours at once: every sift is charged to
the cost model's separate *heap meter*, so one TA run yields the TA
time (base + heap) and the ITA time (base only).

The maintenance policy mirrors what the paper describes observing
("most of the elements that are inserted into this heap are not being
removed from it later on" for large ``k``): every candidate update is
*pushed*, and the minimum is *popped* whenever the heap exceeds ``k`` —
the insert-then-evict discipline whose removal count ``n - k`` shrinks
as ``k`` grows, matching the paper's cost-versus-k curves.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..storage.cost import CostModel

__all__ = ["TopKHeap"]


class _Reversed:
    """Wraps a value so heap ordering prefers *larger* wrapped values
    for eviction — i.e. smaller original values are kept longer."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


class TopKHeap:
    """A bounded min-heap over (score, tiebreak, payload) triples.

    Ties on score are broken deterministically: the payload with the
    smallest key (under ``prefer``, default the key itself) is retained
    preferentially, matching the ``(-score, docid, endpos)`` ordering
    the other strategies sort results by.

    Stale entries for a re-scored payload are handled lazily: the heap
    may temporarily hold several entries per payload, and eviction
    discards entries that no longer reflect the payload's best score.
    """

    def __init__(self, k: int, cost_model: CostModel,
                 prefer: Callable[[object, object], bool] | None = None) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.cost_model = cost_model
        self._prefer = prefer if prefer is not None else (lambda key: key)
        self._heap: list[tuple[float, _Reversed, Any]] = []
        self._best: dict[Any, float] = {}

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, key: Any) -> bool:
        return key in self._best

    def offer(self, score: float, key: Any) -> None:
        """Insert or update *key* with *score* (monotone updates only)."""
        previous = self._best.get(key)
        if previous is not None and previous >= score:
            return
        self._best[key] = score
        self.cost_model.heap_insert(len(self._best))
        heapq.heappush(self._heap, (score, _Reversed(self._prefer(key)), key))
        self._evict_down_to_k()

    def _evict_down_to_k(self) -> None:
        while len(self._best) > self.k:
            self.cost_model.heap_remove(len(self._best))
            score, _tie, key = heapq.heappop(self._heap)
            if self._best.get(key) == score:
                del self._best[key]
            # else: stale entry for a payload that was re-scored; the live
            # entry remains further up the heap.
        self._drop_stale_top()

    def _drop_stale_top(self) -> None:
        while self._heap:
            score, _tie, key = self._heap[0]
            if self._best.get(key) == score:
                return
            self.cost_model.heap_remove(len(self._best))
            heapq.heappop(self._heap)

    def min_score(self) -> float:
        """The k-th best score, or -inf while the heap is under-full."""
        if len(self._best) < self.k:
            return float("-inf")
        self._drop_stale_top()
        return self._heap[0][0]

    def items(self) -> list[tuple[float, Any]]:
        """Current (score, key) members, best first."""
        return sorted(((score, key) for key, score in self._best.items()),
                      key=lambda pair: (-pair[0], str(pair[1])))

    def keys(self) -> set[Any]:
        return set(self._best)

    def score_of(self, key: Any) -> float | None:
        return self._best.get(key)
