"""Retrieval strategies: ERA, TA/ITA, Merge, and the TReX engine."""

from .engine import METHODS, TrexEngine
from .era import era_raw, era_retrieve, era_scored_entries
from .heap import TopKHeap
from .iterators import (
    DUMMY_ELEMENT,
    ElementSpan,
    ErplIterator,
    ExtentIterator,
    PostingIterator,
    RplIterator,
)
from .merge import merge_retrieve
from .race import RaceOutcome, race
from .result import EvaluationStats, ResultSet
from .snippets import Snippet, make_snippet
from .ta import DEFAULT_BATCH_SIZE, ta_retrieve
from .ta_ra import ta_ra_retrieve
from .wand import DEFAULT_PIVOT_BATCH, WandSession, WandTermIterator, wand_retrieve

__all__ = [
    "METHODS",
    "TrexEngine",
    "era_raw",
    "era_retrieve",
    "era_scored_entries",
    "TopKHeap",
    "DUMMY_ELEMENT",
    "ElementSpan",
    "ErplIterator",
    "ExtentIterator",
    "PostingIterator",
    "RplIterator",
    "merge_retrieve",
    "RaceOutcome",
    "race",
    "EvaluationStats",
    "ResultSet",
    "Snippet",
    "make_snippet",
    "DEFAULT_BATCH_SIZE",
    "ta_retrieve",
    "ta_ra_retrieve",
    "DEFAULT_PIVOT_BATCH",
    "WandSession",
    "WandTermIterator",
    "wand_retrieve",
]
