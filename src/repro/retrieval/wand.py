"""WAND — document-at-a-time retrieval with block-max pivoting.

The fourth strategy on the TERMatat/DOCatat axis.  Where TA consumes
each RPL in score order and Merge streams every ERPL to the end, WAND
walks the ERPLs in *document order* and uses two tiers of upper bounds
to leap over elements that cannot reach the current top-k floor:

* a **static per-term bound** — when an RPL for the term is resident,
  the head of its block-max directory (``headers[0].max_score``, the
  term's best stored score; with LSM delta runs, the max over live
  runs), otherwise the max over the ERPL's block headers.  The classic
  WAND pivot test sorts terms by their current document and accumulates
  ``w_t · UB_t`` until the sum reaches the floor θ: the term where it
  crosses holds the *pivot* — the first document that could still make
  the top-k;
* a **shallow block-max bound** — before the prefix lists pay a deep
  descent (directory leap + block decode) to align on the pivot, the
  resident ERPL headers of the blocks that would hold the pivot refine
  the bound.  If even the block maxima cannot reach θ, every document
  up to the nearest block boundary (and below the first suffix head) is
  dead, and the prefix lists leap past it without decoding anything —
  the Block-Max-WAND step.

Scoring and tie handling are identical to ERA/TA/Merge: a document's
score is the weighted sum of its stored per-term scores (every stored
score is positive), candidates with upper bound **equal** to θ are
still evaluated (so score ties survive and resolve by smallest key),
and results sort by ``(-score, docid, endpos)`` — byte-identical top-k.

The loop is packaged as a resumable :class:`WandSession` mirroring
:class:`~repro.retrieval.ta.TaSession`: ``wand_retrieve`` runs one
session to completion, while the sharded coordinator advances one
session per shard and feeds the global k-th floor into each session's
pivot bound (``external_floor``) — distributed WAND.
"""

from __future__ import annotations

import heapq

from ..corpus.document import M_POS
from ..index.catalog import IndexCatalog, IndexSegment
from ..index.rpl import RplEntry
from ..scoring.combine import ScoredHit
from ..storage.cost import CostModel
from .heap import TopKHeap
from .iterators import Position, _ErplSidStream
from .result import EvaluationStats

__all__ = ["WandTermIterator", "WandSession", "wand_retrieve",
           "DEFAULT_PIVOT_BATCH"]

#: Pivot rounds between coordinator control points (``step()`` granularity).
DEFAULT_PIVOT_BATCH = 32


class WandTermIterator:
    """Document-order access over one term's ERPL with WAND bounds.

    One skip-capable stream per (sid, run) pair — delta runs appended by
    ``add_document`` merge exactly like :class:`ErplIterator`'s streams
    — combined by a small heap keyed ``(docid, endpos)``.  ``skip_to``
    forwards the leap to every stream whose head is below the target,
    so blocks wholly under it are never decoded.

    ``static_bound`` is the term's WAND upper bound: the resident RPL
    block-max directory head when an RPL segment is stored (max over
    live runs), else the max over the ERPL's own block headers — both
    header-only, nothing is decoded for it.
    """

    def __init__(self, catalog: IndexCatalog, segment: IndexSegment,
                 bound_segment: IndexSegment | None,
                 sids: frozenset[int] | set[int],
                 cost_model: CostModel) -> None:
        self.term = segment.term
        self.length = segment.entry_count
        self._model = cost_model
        self.depth = 0
        self._discarded = 0
        self._heap: list[tuple[Position, int, RplEntry]] = []
        self._streams: list[_ErplSidStream] = []
        runs = catalog.runs_for(segment)
        stream_id = 0
        for sid in sorted(sids):
            for sequence in runs:
                self._streams.append(
                    _ErplSidStream(sequence, sid, cost_model))
                self._push_from(stream_id)
                stream_id += 1
        bound = 0.0
        if bound_segment is not None:
            # The RPL directory is score-descending: the first header's
            # max_score of each live run is the run's best stored score.
            for run in catalog.runs_for(bound_segment):
                if run.block_count:
                    head = run.headers[0].max_score
                    if head > bound:
                        bound = head
        else:
            for run in runs:
                for header in run.headers:
                    if header.max_score > bound:
                        bound = header.max_score
        self.static_bound = bound

    def _push_from(self, stream_id: int) -> None:
        row = self._streams[stream_id].next_row()
        if row is None:
            return
        self.depth += 1
        sid, docid, endpos, score, length = row
        entry = RplEntry(score, sid, docid, endpos, length)
        heapq.heappush(self._heap, ((docid, endpos), stream_id, entry))

    @property
    def exhausted(self) -> bool:
        return not self._heap

    @property
    def current_key(self) -> Position:
        """The head element key, or ``M_POS`` once exhausted."""
        if not self._heap:
            return M_POS
        return self._heap[0][0]

    def consume_head(self) -> RplEntry:
        """Pop and return the head entry (one element, fully scored)."""
        _key, stream_id, entry = heapq.heappop(self._heap)
        self._push_from(stream_id)
        return entry

    def skip_to(self, key: Position) -> int:
        """Leap every stream whose head is below *key*; afterwards the
        term's head (if any) is the first element at or past *key*.
        Returns the number of undecoded blocks leapt."""
        leapt = 0
        heap = self._heap
        while heap and heap[0][0] < key:
            _key, stream_id, _entry = heapq.heappop(heap)
            self._discarded += 1
            leapt += self._streams[stream_id].leap_to(key)
            self._push_from(stream_id)
        return leapt

    def shallow(self, key: Position) -> tuple[float, Position | None]:
        """Block-max refinement for elements at or past *key*.

        Returns ``(bound, boundary)``: *bound* is the max over the live
        streams' header probes — sound per element because an element
        key belongs to exactly one (sid, run) stream — and *boundary*
        the last key the probed blocks jointly cover (``None`` when
        they cover every remaining element).  Header walk only.
        """
        bound = 0.0
        boundary: Position | None = None
        for _key, stream_id, _entry in self._heap:
            stream_bound, stream_boundary = self._streams[stream_id].probe(key)
            if stream_bound > bound:
                bound = stream_bound
            if stream_boundary is not None and (boundary is None
                                                or stream_boundary < boundary):
                boundary = stream_boundary
        return bound, boundary

    def skip_tail(self) -> int:
        """Abandon the term: remaining blocks count as skipped."""
        skipped = 0
        for stream in self._streams:
            skipped += stream.skip_tail()
        self._heap.clear()
        return skipped

    @property
    def skipped(self) -> int:
        """Rows bypassed without individual materialization."""
        return self._discarded + sum(stream.rows_bypassed
                                     for stream in self._streams)


class WandSession:
    """One WAND run, advanced pivot-round by pivot-round.

    Mirrors :class:`~repro.retrieval.ta.TaSession`'s resumable surface
    (``threshold`` / ``can_prune`` / ``step`` / ``run`` / ``prune`` /
    ``finalize`` / ``stats_into``) so the sharded coordinator drives
    both interchangeably.  Unlike TA's candidate bounds, every heap
    entry here carries an **exact** full score — the document was
    evaluated completely when it was offered — which is what makes the
    distributed floor tight.  ``external_floor`` lets the coordinator
    feed the global k-th floor straight into the pivot test.
    """

    def __init__(self,
                 catalog: IndexCatalog,
                 segments: dict[str, IndexSegment],
                 sids: frozenset[int] | set[int],
                 k: int,
                 cost_model: CostModel,
                 term_weights: dict[str, float] | None = None,
                 bound_segments: dict[str, IndexSegment | None] | None = None,
                 batch_size: int = DEFAULT_PIVOT_BATCH) -> None:
        if k < 1:
            raise ValueError("WAND requires k >= 1")
        self.k = k
        self.cost_model = cost_model
        self.batch_size = batch_size
        self.weights = {term: 1.0 for term in segments}
        if term_weights:
            self.weights.update({t: w for t, w in term_weights.items()
                                 if t in self.weights})
        bounds = bound_segments if bound_segments is not None else {}
        self.iterators = {
            term: WandTermIterator(catalog, segment, bounds.get(term),
                                   sids, cost_model)
            for term, segment in segments.items()}
        #: Evaluated element key -> (sid, length), for finalize().
        self.candidates: dict[tuple[int, int], tuple[int, int]] = {}
        self.heap = TopKHeap(k, cost_model)
        self.external_floor = float("-inf")
        self.early_stop = False
        self.pruned = False
        self.finished = False
        self.pivot_advances = 0
        self.blocks_skipped_shallow = 0
        self.docs_evaluated = 0

    # -- bounds ---------------------------------------------------------
    def threshold(self) -> float:
        """Σ_j w_j · UB_j over live terms — bound on any unseen element."""
        return sum(self.weights[term] * iterator.static_bound
                   for term, iterator in self.iterators.items()
                   if not iterator.exhausted)

    def _theta(self) -> float:
        floor = self.heap.min_score()
        if self.external_floor > floor:
            floor = self.external_floor
        return floor

    def can_prune(self, floor: float) -> bool:
        """Sound early-termination test against a global *floor*.

        Every heap entry is an exact full score, so the shard is dead
        once the floor strictly clears both the static threshold (no
        unseen element can reach it) and the best already-evaluated
        score (no collected hit would survive the global merge).
        Strict comparisons throughout, so cross-shard ties survive.
        """
        if floor == float("-inf"):
            return False
        self.cost_model.compare()
        if floor <= self.threshold():
            return False
        if len(self.heap):
            self.cost_model.compare()
            if self.heap.items()[0][0] >= floor:
                return False
        return True

    # -- advancement ----------------------------------------------------
    def step(self) -> bool:
        """Advance one batch of pivot rounds; False once ended."""
        if self.finished:
            return False
        for _ in range(self.batch_size):
            if not self._round():
                return False
        return True

    def run(self) -> None:
        while self.step():
            pass

    def _round(self) -> bool:
        """One pivot round: find the pivot, then evaluate it, leap the
        prefix lists onto it, or rule it out via the shallow bound."""
        live = [(term, iterator)
                for term, iterator in self.iterators.items()
                if not iterator.exhausted]
        if not live:
            self.finished = True
            return False
        # Nearly-sorted between rounds: one comparison sweep's worth.
        self.cost_model.compare(len(live))
        live.sort(key=lambda pair: pair[1].current_key)
        theta = self._theta()
        accumulated = 0.0
        pivot = -1
        for index, (term, iterator) in enumerate(live):
            accumulated += self.weights[term] * iterator.static_bound
            self.cost_model.compare()
            if accumulated >= theta:  # non-strict: ties must be evaluated
                pivot = index
                break
        if pivot < 0:
            # Even all live bounds together fall strictly below θ: no
            # remaining document can enter the top-k.
            self.early_stop = True
            self._finish()
            return False
        pivot_key = live[pivot][1].current_key
        if live[0][1].current_key == pivot_key:
            self._evaluate(pivot_key)
            return True
        prefix = live[:pivot + 1]
        shallow = 0.0
        boundary: Position | None = None
        for term, iterator in prefix:
            term_bound, term_boundary = iterator.shallow(pivot_key)
            shallow += self.weights[term] * term_bound
            self.cost_model.compare()
            if term_boundary is not None and (boundary is None
                                              or term_boundary < boundary):
                boundary = term_boundary
        if shallow < theta:
            # Block-Max-WAND: the blocks around the pivot cannot reach
            # θ, so everything up to the boundary (and below the first
            # suffix head) is dead — leap it without decoding.
            target = self._next_target(live, pivot, pivot_key, boundary)
            for term, iterator in prefix:
                self.blocks_skipped_shallow += iterator.skip_to(target)
            self.pivot_advances += 1
            return True
        # Deep descent: align the prefix lists on the pivot document.
        for term, iterator in live[:pivot]:
            iterator.skip_to(pivot_key)
        self.pivot_advances += 1
        return True

    @staticmethod
    def _next_target(live: list[tuple[str, "WandTermIterator"]], pivot: int,
                     pivot_key: Position,
                     boundary: Position | None) -> Position:
        """First key not ruled out by a failed shallow check: past the
        pivot and the probed block boundary, clipped to the first
        suffix head (a suffix term could score documents beyond it)."""
        target = (pivot_key[0], pivot_key[1] + 1)
        if boundary is None:
            target = M_POS  # the probed blocks cover every remaining key
        else:
            after = (boundary[0], boundary[1] + 1)
            if after > target:
                target = after
        if pivot + 1 < len(live):
            suffix_head = live[pivot + 1][1].current_key
            if suffix_head < target:
                target = suffix_head
        return target

    def _evaluate(self, key: Position) -> None:
        """Full evaluation of the aligned pivot document: consume its
        entry from every term positioned on it, in term order."""
        score = 0.0
        sid = 0
        length = 0
        for term, iterator in self.iterators.items():
            if iterator.exhausted or iterator.current_key != key:
                continue
            self.cost_model.compare()
            entry = iterator.consume_head()
            score += self.weights[term] * entry.score
            self.cost_model.score_combine()
            sid = entry.sid
            length = entry.length
        self.docs_evaluated += 1
        self.candidates[key] = (sid, length)
        self.heap.offer(score, key)

    def _finish(self) -> None:
        self.finished = True
        for iterator in self.iterators.values():
            iterator.skip_tail()

    def prune(self) -> None:
        """Abandon the session: its hits can no longer reach the global
        top-k; remaining blocks count as skipped."""
        self.pruned = True
        self._finish()

    # -- results --------------------------------------------------------
    def finalize(self) -> list[ScoredHit]:
        hits = [ScoredHit(score=score, docid=key[0], end_pos=key[1],
                          sid=self.candidates[key][0],
                          length=self.candidates[key][1])
                for score, key in self.heap.items()]
        hits.sort(key=lambda h: (-h.score, h.docid, h.end_pos))
        return hits

    def stats_into(self, stats: EvaluationStats) -> None:
        """Accumulate per-list depth/length/skip and pivot counters."""
        for term, iterator in self.iterators.items():
            stats.list_depths[term] = (stats.list_depths.get(term, 0)
                                       + iterator.depth)
            stats.list_lengths[term] = (stats.list_lengths.get(term, 0)
                                        + iterator.length)
            stats.rows_skipped += iterator.skipped
        stats.pivot_advances += self.pivot_advances
        stats.blocks_skipped_shallow += self.blocks_skipped_shallow
        stats.docs_evaluated += self.docs_evaluated


def wand_retrieve(catalog: IndexCatalog,
                  segments: dict[str, IndexSegment],
                  sids: frozenset[int] | set[int],
                  k: int,
                  cost_model: CostModel,
                  term_weights: dict[str, float] | None = None,
                  bound_segments: dict[str, IndexSegment | None] | None = None,
                  batch_size: int = DEFAULT_PIVOT_BATCH,
                  ) -> tuple[list[ScoredHit], EvaluationStats]:
    """Run Block-Max-WAND for the top-*k* elements.

    Parameters
    ----------
    segments:
        For each query term, the ERPL segment to walk in document order.
    bound_segments:
        Optionally, for each term, a resident RPL segment whose
        block-max directory supplies the static upper bound (probed
        only — never decoded, never materialized).
    """
    snapshot = cost_model.snapshot()
    session = WandSession(catalog, segments, sids, k, cost_model,
                          term_weights, bound_segments, batch_size)
    session.run()
    hits = session.finalize()

    spent = cost_model.since(snapshot)
    stats = EvaluationStats(method="wand", cost=spent.total_cost,
                            ideal_cost=spent.ideal_cost,
                            candidates=len(session.candidates),
                            early_stop=session.early_stop)
    stats.record_block_io(spent)
    session.stats_into(stats)
    return hits, stats
