"""Race — running TA and Merge in parallel, keeping the first finisher.

Paper §4: "If the two computations are being done in parallel, the
system can return the answer from the computation that finishes first."
In the simulated-cost setting, a race of two deterministic computations
finishes at the *minimum* of their costs, while occupying both
executors for that long (so the charged cost is ``2 × min`` under a
work-accounting view, or ``min`` under a latency view — we report
both).  The race requires both kinds of redundant indexes (RPLs *and*
ERPLs) for the query, which is exactly the storage trade-off the
self-managing advisor's ``x_i1 + x_i2 ≤ 1`` constraint avoids paying.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scoring.combine import ScoredHit
from .result import EvaluationStats

__all__ = ["RaceOutcome", "race"]


@dataclass
class RaceOutcome:
    """The result of racing two strategy runs."""

    winner: str
    hits: list[ScoredHit]
    stats: EvaluationStats
    #: Wall-clock-style latency: the winner's cost.
    latency: float
    #: Total work performed: both executors ran until the winner finished.
    work: float
    loser_cost: float


def race(ta_run: tuple[list[ScoredHit], EvaluationStats],
         merge_run: tuple[list[ScoredHit], EvaluationStats]) -> RaceOutcome:
    """Combine a TA run and a Merge run into a race outcome.

    Both runs are executed (this is a simulation — there is no way to
    abort the loser early), then the winner is chosen by simulated
    cost.  ``latency`` is the winner's cost; ``work`` charges both
    executors for the duration of the race, i.e. ``2 × latency``.
    """
    ta_hits, ta_stats = ta_run
    merge_hits, merge_stats = merge_run
    if ta_stats.cost <= merge_stats.cost:
        winner, hits, stats, loser_cost = "ta", ta_hits, ta_stats, merge_stats.cost
    else:
        winner, hits, stats, loser_cost = "merge", merge_hits, merge_stats, ta_stats.cost
    latency = stats.cost
    outcome_stats = EvaluationStats(
        method=f"race({winner})",
        cost=latency,
        ideal_cost=stats.ideal_cost,
        list_depths=dict(stats.list_depths),
        list_lengths=dict(stats.list_lengths),
        rows_skipped=stats.rows_skipped,
        candidates=stats.candidates,
        early_stop=stats.early_stop,
    )
    return RaceOutcome(winner=winner, hits=hits, stats=outcome_stats,
                       latency=latency, work=2 * latency,
                       loser_cost=loser_cost)
