"""The Elements table: ``Elements(SID, docid, endpos, length)``.

One row per element in the corpus, keyed by ``(SID, docid, endpos)``
(paper §2.2).  The key order is what makes extent iterators work: a
prefix scan on ``SID`` yields the extent in document/position order,
and a seek to ``(SID, docid, pos)`` implements the ERA primitive
``nextElementAfter``.
"""

from __future__ import annotations

from ..corpus.collection import Collection
from ..storage.cost import CostModel
from ..storage.table import Column, Schema, Table
from ..summary.base import PartitionSummary

__all__ = ["ELEMENTS_SCHEMA", "build_elements_table"]

ELEMENTS_SCHEMA = Schema(
    [
        Column("sid", "uint"),
        Column("docid", "uint"),
        Column("endpos", "uint"),
        Column("length", "uint"),
    ],
    key_length=3,
)


def build_elements_table(collection: Collection, summary: PartitionSummary,
                         cost_model: CostModel | None = None,
                         btree_order: int = 64) -> Table:
    """Materialize the Elements table for *collection* under *summary*."""
    table = Table("Elements", ELEMENTS_SCHEMA, cost_model=cost_model,
                  btree_order=btree_order)
    for document in collection:
        docid = document.docid
        for node in document.elements():
            sid = summary.sid_of(docid, node.end_pos)
            table.insert((sid, docid, node.end_pos, node.length))
    return table
