"""The Elements table: ``Elements(SID, docid, endpos, length)``.

One row per element in the corpus, keyed by ``(SID, docid, endpos)``
(paper §2.2).  The key order is what makes extent iterators work: a
prefix scan on ``SID`` yields the extent in document/position order,
and a seek to ``(SID, docid, pos)`` implements the ERA primitive
``nextElementAfter``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..corpus.collection import Collection
from ..storage.blocks import DEFAULT_BLOCK_SIZE, BlockSequence
from ..storage.cost import CostModel
from ..storage.pager import PageCache
from ..storage.serialization import BlockCodec, UIntCodec
from ..storage.table import Column, Schema, Table
from ..summary.base import PartitionSummary

__all__ = ["ELEMENTS_SCHEMA", "BlockedElements", "build_elements_table"]

ELEMENTS_SCHEMA = Schema(
    [
        Column("sid", "uint"),
        Column("docid", "uint"),
        Column("endpos", "uint"),
        Column("length", "uint"),
    ],
    key_length=3,
)


def build_elements_table(collection: Collection, summary: PartitionSummary,
                         cost_model: CostModel | None = None,
                         btree_order: int = 64) -> Table:
    """Materialize the Elements table for *collection* under *summary*."""
    table = Table("Elements", ELEMENTS_SCHEMA, cost_model=cost_model,
                  btree_order=btree_order)
    for document in collection:
        docid = document.docid
        for node in document.elements():
            sid = summary.sid_of(docid, node.end_pos)
            table.insert((sid, docid, node.end_pos, node.length))
    return table


class BlockedElements:
    """Per-sid compressed block sequences over the Elements table.

    The table stays the persistent, ingestable source of truth; this is
    the read-optimized access path ERA's extent iterators probe.  One
    sequence per sid keeps each extent's ``(docid, endpos)`` runs
    delta-compressed, with the block headers acting as the skip
    directory ``nextElementAfter`` consults before decoding anything.
    """

    def __init__(self, table: Table, cost_model: CostModel | None = None,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 cache: PageCache | None = None) -> None:
        self.table = table
        self.block_size = block_size
        self.cost_model = (cost_model if cost_model is not None
                           else table.cost_model)
        self._cache = (cache if cache is not None
                       else PageCache(cost_model=self.cost_model))
        self._sequences: dict[int, BlockSequence] = {}
        self.rebuild()

    @staticmethod
    def _codec() -> BlockCodec:
        return BlockCodec(key_width=2, payload_codecs=(UIntCodec(),))

    def rebuild(self, sids: Iterable[int] | None = None) -> None:
        """(Re)build per-sid sequences (maintenance path).

        ``sids=None`` rebuilds every extent from a full table scan.
        Passing the affected sids rebuilds only those extents via prefix
        scans — the incremental path ``add_document`` uses, which costs
        O(affected extents) instead of O(collection) per insert.
        """
        if sids is None:
            for old in self._sequences.values():
                old.invalidate()
            grouped: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
            for sid, docid, endpos, length in self.table.scan():
                grouped[sid].append((docid, endpos, length))
            self._sequences = {
                sid: BlockSequence.build(rows, self._codec(),
                                         block_size=self.block_size,
                                         cost_model=self.cost_model,
                                         cache=self._cache)
                for sid, rows in grouped.items()}
            return
        for sid in sorted(set(sids)):
            old = self._sequences.get(sid)
            if old is not None:
                old.invalidate()
            rows = [(docid, endpos, length) for _sid, docid, endpos, length
                    in self.table.scan_prefix((sid,))]
            if rows:
                self._sequences[sid] = BlockSequence.build(
                    rows, self._codec(), block_size=self.block_size,
                    cost_model=self.cost_model, cache=self._cache)
            else:
                self._sequences.pop(sid, None)

    def sequence(self, sid: int) -> BlockSequence | None:
        return self._sequences.get(sid)

    def use_cache(self, cache: PageCache) -> None:
        self._cache = cache
        for sequence in self._sequences.values():
            sequence.use_cache(cache)

    @property
    def size_bytes(self) -> int:
        """Compressed footprint across all extents."""
        return sum(seq.size_bytes for seq in self._sequences.values())
