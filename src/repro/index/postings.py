"""The PostingLists table: fragmented positional inverted lists.

``PostingLists(token, docid, offset, postingdataentry)`` (paper §2.2):
for each term, all positions where it appears, as ``(docid, offset)``
pairs.  A long posting list is split into fragments — each stored row
holds a bounded batch of positions and is keyed by its first position,
so that fragments of one term are adjacent and in position order, and a
seek can land mid-list.  Following the paper, a maximal dummy position
``m-pos`` is appended after the last real position of every term, so
iterators detect exhaustion uniformly.
"""

from __future__ import annotations

from collections import defaultdict

from ..corpus.collection import Collection
from ..corpus.document import M_POS, Document
from ..storage.blocks import BlockSequence
from ..storage.cost import CostModel
from ..storage.pager import PageCache
from ..storage.serialization import BlockCodec
from ..storage.table import Column, Schema, Table

__all__ = ["POSTING_LISTS_SCHEMA", "BlockedPostings",
           "build_posting_lists_table", "DEFAULT_FRAGMENT_SIZE"]

DEFAULT_FRAGMENT_SIZE = 64

POSTING_LISTS_SCHEMA = Schema(
    [
        Column("token", "str"),
        Column("docid", "uint"),
        Column("offset", "uint"),
        Column("postingdataentry", "list[tuple[uint,uint]]"),
    ],
    key_length=3,
)


def build_posting_lists_table(collection: Collection,
                              cost_model: CostModel | None = None,
                              fragment_size: int = DEFAULT_FRAGMENT_SIZE,
                              btree_order: int = 64) -> Table:
    """Materialize the PostingLists table for *collection*.

    Positions are gathered per term across the whole collection in
    ``(docid, offset)`` order, chunked into fragments of at most
    *fragment_size* positions, and terminated with the ``m-pos``
    sentinel.
    """
    if fragment_size < 1:
        raise ValueError("fragment_size must be positive")
    table = Table("PostingLists", POSTING_LISTS_SCHEMA, cost_model=cost_model,
                  btree_order=btree_order)
    positions: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for document in collection:
        docid = document.docid
        for occurrence in document.tokens:
            positions[occurrence.term].append((docid, occurrence.position))

    for term, term_positions in positions.items():
        term_positions.sort()
        _write_term_fragments(table, term, term_positions, fragment_size)
    return table


def _write_term_fragments(table: Table, term: str,
                          sorted_positions: list[tuple[int, int]],
                          fragment_size: int) -> None:
    """Write one term's posting list as fragments + the m-pos sentinel."""
    with_sentinel = sorted_positions + [M_POS]
    for start in range(0, len(with_sentinel), fragment_size):
        fragment = with_sentinel[start: start + fragment_size]
        first_docid, first_offset = fragment[0]
        table.insert((term, first_docid, first_offset, list(fragment)))


class BlockedPostings:
    """Per-term compressed block sequences over the PostingLists table.

    The table stays the persistent, ingestable source of truth; this is
    the read-optimized access path.  Each block mirrors one fragment
    row — same boundaries, same ``m-pos`` sentinel — so the physical
    granularity the fragment-size knob controls survives compression,
    but positions are delta+varint packed and block headers form a
    resident skip directory.
    """

    def __init__(self, table: Table, cost_model: CostModel | None = None,
                 cache: PageCache | None = None) -> None:
        self.table = table
        self.cost_model = (cost_model if cost_model is not None
                           else table.cost_model)
        self._cache = (cache if cache is not None
                       else PageCache(cost_model=self.cost_model))
        self._sequences: dict[str, BlockSequence] = {}
        self.rebuild()

    @staticmethod
    def _codec() -> BlockCodec:
        return BlockCodec(key_width=2)

    def rebuild(self, terms: set[str] | None = None) -> None:
        """(Re)build block sequences from the table (maintenance path)."""
        if terms is None:
            grouped: dict[str, list[list[tuple[int, int]]]] = defaultdict(list)
            for row in self.table.scan():
                grouped[row[0]].append([tuple(pair) for pair in row[3]])
            self._sequences = {
                term: BlockSequence.build_grouped(
                    fragments, self._codec(),
                    cost_model=self.cost_model, cache=self._cache)
                for term, fragments in grouped.items()}
            return
        for term in terms:
            old = self._sequences.pop(term, None)
            if old is not None:
                old.invalidate()
            fragments = [[tuple(pair) for pair in row[3]]
                         for row in self.table.scan_prefix((term,))]
            if fragments:
                self._sequences[term] = BlockSequence.build_grouped(
                    fragments, self._codec(),
                    cost_model=self.cost_model, cache=self._cache)

    def sequence(self, term: str) -> BlockSequence | None:
        return self._sequences.get(term)

    def use_cache(self, cache: PageCache) -> None:
        self._cache = cache
        for sequence in self._sequences.values():
            sequence.use_cache(cache)

    @property
    def size_bytes(self) -> int:
        """Compressed footprint across all terms."""
        return sum(seq.size_bytes for seq in self._sequences.values())


def extend_posting_lists(table: Table, document: Document,
                         fragment_size: int = DEFAULT_FRAGMENT_SIZE) -> set[str]:
    """Fold a new document's positions into an existing PostingLists table.

    For each term of the document, the term's fragments are read back,
    merged with the new positions, and rewritten (fragment boundaries
    and the m-pos sentinel are rebuilt).  Returns the set of affected
    terms, so callers can invalidate dependent RPL/ERPL segments.
    """
    new_positions: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for occurrence in document.tokens:
        new_positions[occurrence.term].append((document.docid,
                                               occurrence.position))
    for term, added in new_positions.items():
        existing: list[tuple[int, int]] = []
        old_keys = []
        for row in table.scan_prefix((term,)):
            old_keys.append((row[0], row[1], row[2]))
            existing.extend(tuple(pair) for pair in row[3])
        if existing and existing[-1] == M_POS:
            existing.pop()
        for key in old_keys:
            table.delete(key)
        merged = sorted(existing + added)
        _write_term_fragments(table, term, merged, fragment_size)
    return set(new_positions)
