"""The index catalog: which RPL/ERPL segments are materialized.

The paper's self-management problem is *which* redundant lists to keep:
"a system should store only the lists that contribute the most to the
efficiency of handling a given workload" (§4).  The catalog is the
registry the engine and the advisor share:

* a **segment** is one materialized list — an RPL or an ERPL — for one
  term, with a *scope*: either universal (``None``: entries for every
  extent containing the term) or a specific sid set (a query-scoped,
  usually much smaller, redundant index);
* each segment's entries are stored as a compressed
  :class:`~repro.storage.blocks.BlockSequence` — delta+varint blocks of
  ~128 entries with a resident skip directory of per-block headers —
  and ``size_bytes`` is the **compressed** footprint, which is what the
  advisor trades against the disk budget ``d``;
* a lookup finds the best (smallest superset-scope) segment usable to
  answer a query over a given sid set — using a superset segment is
  correct but costs skipping, which is exactly the TA behaviour the
  paper observes on universal lists.

Block layouts (cf. paper §2.2, fragmentation done block-per-run):

* RPL blocks: key ``(ir)`` — the descending-relevance rank, so reading
  blocks in order performs sorted access, and each header's
  ``max_score`` bounds everything at or below that rank (block-max);
* ERPL blocks: key ``(sid, docid, endpos)`` — per-(term, sid) ranges in
  position order, so Merge leaps (via ``first_key``/``last_key``) to a
  query's extents.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from ..backend import PROFILES, check_compression, make_backend, open_backend
from ..errors import MissingIndexError, StorageError
from ..index.rpl import (
    RplEntry,
    erpl_block_codec,
    erpl_block_entry,
    rpl_block_codec,
    rpl_block_entry,
    rpl_entry_from_block,
)
from ..storage.blocks import DEFAULT_BLOCK_SIZE, BlockSequence
from ..storage.cost import CostModel, GLOBAL_COST_MODEL
from ..storage.pager import PageCache

__all__ = ["IndexSegment", "IndexCatalog"]


@dataclass(frozen=True)
class IndexSegment:
    """Metadata for one materialized list."""

    segment_id: int
    kind: str  # 'rpl' or 'erpl'
    term: str
    scope: frozenset[int] | None  # None means universal
    entry_count: int
    size_bytes: int
    compression: str = "none"

    def covers(self, sids: Iterable[int]) -> bool:
        """Can this segment answer a query restricted to *sids*?"""
        if self.scope is None:
            return True
        return set(sids) <= self.scope

    @property
    def is_universal(self) -> bool:
        return self.scope is None

    def describe(self) -> str:
        scope = "ALL" if self.scope is None else f"{len(self.scope)} sids"
        codec = "" if self.compression == "none" else f", {self.compression}"
        return (f"{self.kind.upper()}({self.term!r}, {scope}, "
                f"{self.entry_count} entries, {self.size_bytes} B{codec})")


class IndexCatalog:
    """Registry plus block storage for all RPL/ERPL segments."""

    def __init__(self, cost_model: CostModel | None = None,
                 btree_order: int = 64,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 backend: str = "pager",
                 compression: str = "none") -> None:
        # btree_order is accepted for call-site compatibility with the
        # row-store catalog; block storage has no tree fan-out to tune.
        del btree_order
        self.cost_model = (cost_model if cost_model is not None
                           else GLOBAL_COST_MODEL)
        self.block_size = block_size
        if backend not in PROFILES:
            raise StorageError(f"unknown storage backend {backend!r}")
        #: Which datastore :meth:`save`/:meth:`load` use, and whose
        #: :class:`~repro.backend.CostProfile` scales block-read charges.
        self.backend = backend
        #: Default compression for newly built segments; individual
        #: segments may differ (the advisor installs per-segment codecs).
        self.compression = check_compression(compression)
        self._cache = PageCache(cost_model=self.cost_model)
        self._blocks: dict[int, BlockSequence] = {}
        self._deltas: dict[int, list[BlockSequence]] = {}
        self._segments: dict[int, IndexSegment] = {}
        self._next_segment_id = 1
        #: Cumulative maintenance counters, read by the serving layer to
        #: emit ``ingest.*``/``compaction.*`` telemetry as diffs.
        self.deltas_appended = 0
        self.delta_entries_appended = 0
        self.segments_compacted = 0
        self.delta_runs_folded = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _adopt(self, sequence: BlockSequence, segment_id: int,
               kind: str, term: str) -> None:
        """Stamp a sequence with this catalog's routing and identity."""
        sequence.cost_model = self.cost_model
        sequence.use_cache(self._cache)
        sequence.read_factor = PROFILES[self.backend].block_read_factor
        sequence.sequence_id = segment_id
        if sequence.source == "<memory>":
            sequence.source = f"{kind}:{term}"

    def add_rpl_segment(self, term: str, entries: list[RplEntry],
                        scope: Iterable[int] | None = None,
                        compression: str | None = None) -> IndexSegment:
        """Store *entries* (already in descending-score order) as an RPL.

        *compression* overrides the catalog codec for this one segment
        (the advisor materializes individually chosen codecs this way).
        """
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        sequence = BlockSequence.build(
            (rpl_block_entry(rank, entry) for rank, entry in enumerate(entries)),
            rpl_block_codec(), block_size=self.block_size,
            cost_model=self.cost_model, cache=self._cache,
            compression=(self.compression if compression is None
                         else compression))
        self._adopt(sequence, segment_id, "rpl", term)
        segment = IndexSegment(
            segment_id=segment_id,
            kind="rpl",
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=len(entries),
            size_bytes=sequence.size_bytes,
            compression=sequence.compression,
        )
        self._blocks[segment_id] = sequence
        self._segments[segment_id] = segment
        return segment

    def add_erpl_segment(self, term: str, entries: list[RplEntry],
                         scope: Iterable[int] | None = None,
                         compression: str | None = None) -> IndexSegment:
        """Store *entries* as an ERPL (blocks keyed by sid, then position)."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        ordered = sorted(erpl_block_entry(entry) for entry in entries)
        sequence = BlockSequence.build(
            ordered, erpl_block_codec(), block_size=self.block_size,
            cost_model=self.cost_model, cache=self._cache,
            compression=(self.compression if compression is None
                         else compression))
        self._adopt(sequence, segment_id, "erpl", term)
        segment = IndexSegment(
            segment_id=segment_id,
            kind="erpl",
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=len(entries),
            size_bytes=sequence.size_bytes,
            compression=sequence.compression,
        )
        self._blocks[segment_id] = sequence
        self._segments[segment_id] = segment
        return segment

    def build_sequence(self, kind: str, entries: list[RplEntry],
                       compression: str | None = None) -> BlockSequence:
        """Encode *entries* as one block run of the given *kind*.

        RPL runs are keyed by local rank in descending-score order, ERPL
        runs by ``(sid, docid, endpos)``.  The encoding is deterministic,
        so a run built here is byte-identical to one built by a build
        worker from the same entries.  *compression* defaults to the
        catalog's configured codec; delta appends pass their segment's
        codec so every run of a segment stores alike.
        """
        if kind == "rpl":
            ordered = sorted(entries, key=lambda e: (-e.score, e.docid, e.endpos))
            rows: Iterable[tuple] = (rpl_block_entry(rank, entry)
                                     for rank, entry in enumerate(ordered))
            codec = rpl_block_codec()
        else:
            rows = sorted(erpl_block_entry(entry) for entry in entries)
            codec = erpl_block_codec()
        return BlockSequence.build(
            list(rows), codec, block_size=self.block_size,
            cost_model=self.cost_model, cache=self._cache,
            compression=(self.compression if compression is None
                         else compression))

    def install_sequence(self, kind: str, term: str, sequence: BlockSequence,
                         scope: Iterable[int] | None = None, *,
                         segment_id: int | None = None,
                         compression: str | None = None) -> IndexSegment:
        """Register an externally built run as a new segment.

        This is the parent-side install step of the parallel build path:
        workers ship finished :class:`BlockSequence` images back, the
        parent re-hydrates them and installs under the writer lock.

        ``segment_id`` forces the id instead of allocating one — the
        replication path uses it so a follower installs a shipped run
        under exactly the leader's id, keeping later delta appends and
        drops (which address segments by id) aligned across replicas.
        A forced id that is already taken evicts the resident segment
        first: segments are derived data, and the only way a follower
        holds a conflicting id is a replica-local lazy materialization
        the leader never saw (that list rebuilds on demand).

        The sequence keeps the compression it arrived with (shipped
        images carry their codec tag) unless *compression* asks for a
        re-encode — the advisor's apply path uses that to materialize a
        chosen segment compressed into an otherwise-flat catalog.
        """
        if compression is not None:
            sequence = sequence.with_compression(compression)
        if segment_id is None:
            segment_id = self._next_segment_id
            self._next_segment_id += 1
        else:
            if segment_id in self._segments:
                self.drop_segment(segment_id)
            self._next_segment_id = max(self._next_segment_id, segment_id + 1)
        self._adopt(sequence, segment_id, kind, term)
        segment = IndexSegment(
            segment_id=segment_id,
            kind=kind,
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=sequence.entry_count,
            size_bytes=sequence.size_bytes,
            compression=sequence.compression,
        )
        self._blocks[segment_id] = sequence
        self._segments[segment_id] = segment
        return segment

    def install_segment_bytes(self, kind: str, term: str, data: bytes,
                              scope: Iterable[int] | None = None, *,
                              segment_id: int | None = None) -> IndexSegment:
        """Install a serialized run image (see :meth:`install_sequence`)."""
        codec = rpl_block_codec() if kind == "rpl" else erpl_block_codec()
        sequence = BlockSequence.from_bytes(
            data, codec, cost_model=self.cost_model, cache=self._cache,
            source=f"{kind}:{term}", sequence_id=segment_id)
        return self.install_sequence(kind, term, sequence, scope=scope,
                                     segment_id=segment_id)

    def install_compacted_bytes(self, segment_id: int,
                                data: bytes) -> IndexSegment:
        """Replace a segment's base run with a compacted image and clear
        its delta runs (the replication *snapshot-install*).

        The image is the leader's post-compaction base run, which
        :meth:`compact_segment` guarantees is byte-identical to a
        from-scratch build over the extended collection — so after this
        call the follower's segment is byte-identical to the leader's.
        """
        segment = self.get_segment(segment_id)
        codec = (rpl_block_codec() if segment.kind == "rpl"
                 else erpl_block_codec())
        sequence = BlockSequence.from_bytes(
            data, codec, cost_model=self.cost_model, cache=self._cache,
            source=f"{segment.kind}:{segment.term}", sequence_id=segment_id)
        self._adopt(sequence, segment_id, segment.kind, segment.term)
        folded = len(self._deltas.get(segment_id, []))
        old = self._blocks.get(segment_id)
        if old is not None:
            old.invalidate()
        for run in self._deltas.pop(segment_id, []):
            run.invalidate()
        self._blocks[segment_id] = sequence
        updated = replace(segment, entry_count=sequence.entry_count,
                          size_bytes=sequence.size_bytes,
                          compression=sequence.compression)
        self._segments[segment_id] = updated
        self.segments_compacted += 1
        self.delta_runs_folded += folded
        return updated

    # ------------------------------------------------------------------
    # LSM delta runs
    # ------------------------------------------------------------------
    def append_delta(self, segment_id: int, entries: list[RplEntry]) -> IndexSegment:
        """Append a small delta run to a segment instead of dropping it.

        The read path merges base + deltas through the iterators; the
        per-run block headers keep block-max pruning sound because every
        run is individually ordered with its own max-score directory.
        """
        segment = self.get_segment(segment_id)
        if not entries:
            return segment
        run = self.build_sequence(segment.kind, entries,
                                  compression=segment.compression)
        self._adopt(run, segment_id, segment.kind, segment.term)
        self._deltas.setdefault(segment_id, []).append(run)
        updated = replace(segment,
                          entry_count=segment.entry_count + len(entries),
                          size_bytes=segment.size_bytes + run.size_bytes)
        self._segments[segment_id] = updated
        self.deltas_appended += 1
        self.delta_entries_appended += len(entries)
        return updated

    def runs_for(self, segment: IndexSegment) -> list[BlockSequence]:
        """Every run of *segment*: the base sequence plus delta runs, in
        append order.  Single-element for a segment with no deltas."""
        base = self.blocks_for(segment)
        deltas = self._deltas.get(segment.segment_id)
        if not deltas:
            return [base]
        return [base, *deltas]

    def delta_run_count(self, segment_id: int) -> int:
        return len(self._deltas.get(segment_id, []))

    def delta_bytes(self, segment_id: int) -> int:
        return sum(run.size_bytes for run in self._deltas.get(segment_id, []))

    def needs_compaction(self, segment_id: int, ratio: float) -> bool:
        """True when the segment's delta footprint trips *ratio* of the
        base run (an empty base always trips)."""
        deltas = self._deltas.get(segment_id)
        if not deltas:
            return False
        base = self._blocks[segment_id].size_bytes
        if base == 0:
            return True
        return sum(run.size_bytes for run in deltas) >= ratio * base

    def compaction_candidates(self, ratio: float,
                              force: bool = False) -> list[int]:
        """Segment ids whose deltas should fold into the base run."""
        return [segment_id for segment_id in sorted(self._deltas)
                if self._deltas[segment_id]
                and (force or self.needs_compaction(segment_id, ratio))]

    def compact_segment(self, segment_id: int) -> IndexSegment:
        """Fold a segment's delta runs into a fresh base run.

        Each run is already sorted by the segment's block key, and keys
        are unique across runs (delta entries come from new docids), so
        a k-way merge reproduces the exact order a from-scratch build
        would sort into — the compacted run is byte-identical to a
        fresh materialization over the extended collection.
        """
        segment = self.get_segment(segment_id)
        deltas = self._deltas.get(segment_id)
        if not deltas:
            return segment
        merged: list[RplEntry] = []
        for run in self.runs_for(segment):
            merged.extend(self._run_entries(run, segment.kind))
        # build_sequence re-sorts by the segment's block key; keys are
        # unique across runs (deltas carry new docids), so the result is
        # exactly the from-scratch order.
        sequence = self.build_sequence(segment.kind, merged,
                                       compression=segment.compression)
        self._adopt(sequence, segment_id, segment.kind, segment.term)
        folded = len(deltas)
        for run in self.runs_for(segment):
            run.invalidate()
        self._deltas.pop(segment_id, None)
        self._blocks[segment_id] = sequence
        updated = replace(segment, entry_count=sequence.entry_count,
                          size_bytes=sequence.size_bytes)
        self._segments[segment_id] = updated
        self.segments_compacted += 1
        self.delta_runs_folded += folded
        return updated

    def _run_entries(self, sequence: BlockSequence, kind: str) -> list[RplEntry]:
        """Decode one run's entries, uncharged (maintenance path)."""
        if kind == "rpl":
            # repro: allow[TRX201] documented uncharged maintenance path
            return [rpl_entry_from_block(row) for row in sequence.entries()]
        return [RplEntry(score, sid, docid, endpos, length)
                # repro: allow[TRX201] documented uncharged maintenance path
                for sid, docid, endpos, score, length in sequence.entries()]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def segments(self, kind: str | None = None) -> Iterator[IndexSegment]:
        for segment in self._segments.values():
            if kind is None or segment.kind == kind:
                yield segment

    def get_segment(self, segment_id: int) -> IndexSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise StorageError(f"unknown segment id {segment_id}") from None

    def has_segment(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def find_segment(self, kind: str, term: str,
                     sids: Iterable[int]) -> IndexSegment | None:
        """Best segment of *kind* for *term* covering *sids*.

        Preference order: the segment with the smallest scope that still
        covers the requested sids (fewer entries to skip); a universal
        segment is the fallback.
        """
        sid_set = set(sids)
        best: IndexSegment | None = None
        for segment in self._segments.values():
            if segment.kind != kind or segment.term != term:
                continue
            if not segment.covers(sid_set):
                continue
            if best is None:
                best = segment
                continue
            best_rank = float("inf") if best.scope is None else len(best.scope)
            seg_rank = float("inf") if segment.scope is None else len(segment.scope)
            if seg_rank < best_rank:
                best = segment
        return best

    def require_segment(self, kind: str, term: str,
                        sids: Iterable[int]) -> IndexSegment:
        segment = self.find_segment(kind, term, sids)
        if segment is None:
            raise MissingIndexError(kind, term=term)
        return segment

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------
    def blocks_for(self, segment: IndexSegment) -> BlockSequence:
        """The block sequence holding *segment*'s entries."""
        try:
            return self._blocks[segment.segment_id]
        except KeyError:
            raise StorageError(
                f"segment {segment.segment_id} has no block storage") from None

    def segment_entries(self, segment: IndexSegment) -> list[RplEntry]:
        """All of *segment*'s entries, uncharged (maintenance path).

        RPL segments come back in rank (descending-score) order, ERPL
        segments in sid-major position order.  Delta runs are merged in,
        so the view is always the logical (base + deltas) list.
        """
        runs = self.runs_for(segment)
        entries: list[RplEntry] = []
        for run in runs:
            entries.extend(self._run_entries(run, segment.kind))
        if len(runs) > 1:
            if segment.kind == "rpl":
                entries.sort(key=lambda e: (-e.score, e.docid, e.endpos))
            else:
                entries.sort(key=lambda e: (e.sid, e.docid, e.endpos))
        return entries

    def erpl_probe(self, segment: IndexSegment, sid: int, docid: int,
                   endpos: int) -> float | None:
        """Random access into an ERPL: the element's score, or ``None``.

        Charged as one positioning seek plus whatever block the skip
        directory lands on — the paper's cited TA-with-random-accesses
        pays this per probe.
        """
        self.cost_model.seek()
        key = (sid, docid, endpos)
        for sequence in self.runs_for(segment):
            index = sequence.find_first_block_ge(key)
            if index >= sequence.block_count:
                continue
            if sequence.headers[index].first_key > key:
                continue
            entries = sequence.read_block(index)
            lo, hi = 0, len(entries)
            steps = 0
            while lo < hi:
                mid = (lo + hi) // 2
                steps += 1
                if entries[mid][:3] < key:
                    lo = mid + 1
                else:
                    hi = mid
            if steps:
                self.cost_model.compare(steps)
            if lo < len(entries) and entries[lo][:3] == key:
                self.cost_model.tuple_read()
                return entries[lo][3]
        return None

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def drop_segment(self, segment_id: int) -> None:
        """Delete a segment's blocks (base and deltas) and unregister it."""
        self.get_segment(segment_id)
        sequence = self._blocks.pop(segment_id, None)
        if sequence is not None:
            sequence.invalidate()
        for run in self._deltas.pop(segment_id, []):
            run.invalidate()
        del self._segments[segment_id]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(segment.size_bytes for segment in self._segments.values())

    def describe(self) -> list[str]:
        return [segment.describe() for segment in
                sorted(self._segments.values(), key=lambda s: s.segment_id)]

    def use_cache(self, cache: PageCache) -> None:
        """Route every segment's block residency through *cache*."""
        self._cache = cache
        for sequence in self._blocks.values():
            sequence.use_cache(cache)
        for runs in self._deltas.values():
            for run in runs:
                run.use_cache(cache)

    def delta_snapshot(self) -> dict[str, int]:
        """LSM state counters for stats endpoints and tests."""
        return {
            "segments_with_deltas": sum(1 for runs in self._deltas.values()
                                        if runs),
            "delta_runs": sum(len(runs) for runs in self._deltas.values()),
            "delta_bytes": sum(run.size_bytes
                               for runs in self._deltas.values()
                               for run in runs),
            "deltas_appended": self.deltas_appended,
            "delta_entries_appended": self.delta_entries_appended,
            "segments_compacted": self.segments_compacted,
            "delta_runs_folded": self.delta_runs_folded,
        }

    def storage_snapshot(self) -> dict[str, object]:
        """Backend, per-kind footprint and compression state.

        ``size_bytes`` is what segments occupy as stored; ``flat_bytes``
        what they would occupy uncompressed — their ratio is the
        compression ratio ``repro stats`` reports.  Delta runs count
        toward their segment's kind.
        """
        kinds: dict[str, dict[str, int]] = {}
        compressed_segments = 0
        for segment in self._segments.values():
            bucket = kinds.setdefault(
                segment.kind, {"segments": 0, "size_bytes": 0, "flat_bytes": 0})
            bucket["segments"] += 1
            for run in self.runs_for(segment):
                bucket["size_bytes"] += run.size_bytes
                bucket["flat_bytes"] += run.flat_size_bytes
            if segment.compression != "none":
                compressed_segments += 1
        size = sum(bucket["size_bytes"] for bucket in kinds.values())
        flat = sum(bucket["flat_bytes"] for bucket in kinds.values())
        return {
            "backend": self.backend,
            "compression": self.compression,
            "compressed_segments": compressed_segments,
            "kinds": kinds,
            "size_bytes": size,
            "flat_bytes": flat,
            "compression_ratio": round(size / flat, 4) if flat else 1.0,
        }

    def cache_stats(self) -> dict[str, int | float]:
        """Residency statistics of the catalog's block cache."""
        return {
            "capacity": self._cache.capacity,
            "resident": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "evictions": self._cache.evictions,
            "hit_rate": round(self._cache.hit_rate, 4),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist every segment's blocks and the segment metadata.

        All I/O goes through this catalog's :class:`~repro.backend.
        StorageBackend`: the pager writes the historical one-file-per-
        segment layout (``seg{ID}.blk`` + ``seg{ID}.d{N}.blk`` delta
        runs next to a ``segments.tsv`` manifest, so a save/load
        round-trip preserves the LSM state instead of silently
        compacting it); sqlite and mmap pack the same blobs into one
        store file.  Every backend publishes atomically.

        A fully flat catalog writes the pre-compression manifest layout
        byte-for-byte; compression adds a manifest column and a codec
        tag on line 1, which old files never carried, so loads stay
        backward compatible in both directions.
        """
        store = make_backend(self.backend, directory, mode="w")
        try:
            tagged = (self.compression != "none"
                      or any(segment.compression != "none"
                             for segment in self._segments.values()))
            lines = [f"{self._next_segment_id}\t{self.compression}"
                     if tagged else f"{self._next_segment_id}"]
            for segment in sorted(self._segments.values(),
                                  key=lambda s: s.segment_id):
                scope = ("*" if segment.scope is None
                         else ",".join(str(sid) for sid in sorted(segment.scope)))
                deltas = self._deltas.get(segment.segment_id, [])
                row = [str(segment.segment_id), segment.kind, segment.term,
                       scope, str(segment.entry_count),
                       str(segment.size_bytes), str(len(deltas))]
                if tagged:
                    row.append(segment.compression)
                lines.append("\t".join(row))
                store.write(f"seg{segment.segment_id}.blk",
                            self._blocks[segment.segment_id].to_bytes())
                for run_index, run in enumerate(deltas):
                    store.write(f"seg{segment.segment_id}.d{run_index}.blk",
                                run.to_bytes())
            store.write("segments.tsv",
                        ("\n".join(lines) + "\n").encode("utf-8"))
            store.sync()
        finally:
            store.close()

    def load(self, directory: str) -> None:
        """Replace this catalog's contents from a saved directory.

        The backend is auto-detected from the published artifacts, so a
        catalog configured one way can still open a store written
        another way — the catalog adopts the store's backend.
        """
        store = open_backend(directory)
        try:
            self.backend = store.name
            text = store.read("segments.tsv").decode("utf-8")
            lines = [line for line in text.splitlines() if line.strip()]
            if not lines:
                raise StorageError(f"{directory}/segments.tsv is empty")
            head = lines[0].split("\t")
            self._next_segment_id = int(head[0])
            if len(head) > 1:
                self.compression = check_compression(head[1])
            self._segments = {}
            self._blocks = {}
            self._deltas = {}
            for line in lines[1:]:
                fields = line.split("\t")
                if len(fields) == 6:  # pre-delta catalog layout
                    (seg_id, kind, term, scope_text, entry_count,
                     size_bytes) = fields
                    delta_count = "0"
                elif len(fields) == 7:  # pre-compression layout
                    (seg_id, kind, term, scope_text, entry_count, size_bytes,
                     delta_count) = fields
                else:
                    (seg_id, kind, term, scope_text, entry_count, size_bytes,
                     delta_count, _compression_column) = fields
                scope = (None if scope_text == "*" else
                         frozenset(int(s) for s in scope_text.split(",") if s))
                segment_id = int(seg_id)
                codec = rpl_block_codec() if kind == "rpl" else erpl_block_codec()
                source = os.path.join(directory, f"seg{segment_id}.blk")
                sequence = BlockSequence.from_bytes(
                    store.read(f"seg{segment_id}.blk"), codec,
                    cost_model=self.cost_model, cache=self._cache,
                    source=source, sequence_id=segment_id)
                self._adopt(sequence, segment_id, kind, term)
                # The image's codec tag is authoritative for the segment.
                segment = IndexSegment(
                    segment_id=segment_id, kind=kind, term=term, scope=scope,
                    entry_count=int(entry_count), size_bytes=int(size_bytes),
                    compression=sequence.compression)
                self._segments[segment_id] = segment
                self._blocks[segment_id] = sequence
                runs: list[BlockSequence] = []
                for run_index in range(int(delta_count)):
                    blob = f"seg{segment_id}.d{run_index}.blk"
                    run = BlockSequence.from_bytes(
                        store.read(blob), codec,
                        cost_model=self.cost_model, cache=self._cache,
                        source=os.path.join(directory, blob),
                        sequence_id=segment_id)
                    self._adopt(run, segment_id, kind, term)
                    runs.append(run)
                if runs:
                    self._deltas[segment_id] = runs
        finally:
            store.close()
