"""The index catalog: which RPL/ERPL segments are materialized.

The paper's self-management problem is *which* redundant lists to keep:
"a system should store only the lists that contribute the most to the
efficiency of handling a given workload" (§4).  The catalog is the
registry the engine and the advisor share:

* a **segment** is one materialized list — an RPL or an ERPL — for one
  term, with a *scope*: either universal (``None``: entries for every
  extent containing the term) or a specific sid set (a query-scoped,
  usually much smaller, redundant index);
* segments own rows in the shared ``RPLs``/``ERPLs`` tables, keyed by
  their segment id, and their byte footprint is tracked so the advisor
  can enforce the disk budget ``d``;
* a lookup finds the best (smallest superset-scope) segment usable to
  answer a query over a given sid set — using a superset segment is
  correct but costs skipping, which is exactly the TA behaviour the
  paper observes on universal lists.

Table layouts (cf. paper §2.2, fragmentation done row-per-entry):

* ``RPLs(token, seg, ir, score, sid, docid, endpos, length)`` with key
  ``(token, seg, ir)`` — ``ir`` is the descending-relevance rank, so a
  prefix scan performs sorted access;
* ``ERPLs(token, seg, sid, docid, endpos, score, length)`` with key
  ``(token, seg, sid, docid, endpos)`` — per-(term, sid) ranges in
  position order, so Merge can seek straight to a query's extents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import MissingIndexError, StorageError
from ..index.rpl import RplEntry
from ..storage.cost import CostModel
from ..storage.table import Column, Schema, Table

__all__ = ["IndexSegment", "IndexCatalog", "RPLS_SCHEMA", "ERPLS_SCHEMA"]

RPLS_SCHEMA = Schema(
    [
        Column("token", "str"),
        Column("seg", "uint"),
        Column("ir", "uint"),
        Column("score", "float"),
        Column("sid", "uint"),
        Column("docid", "uint"),
        Column("endpos", "uint"),
        Column("length", "uint"),
    ],
    key_length=3,
)

ERPLS_SCHEMA = Schema(
    [
        Column("token", "str"),
        Column("seg", "uint"),
        Column("sid", "uint"),
        Column("docid", "uint"),
        Column("endpos", "uint"),
        Column("score", "float"),
        Column("length", "uint"),
    ],
    key_length=5,
)


@dataclass(frozen=True)
class IndexSegment:
    """Metadata for one materialized list."""

    segment_id: int
    kind: str  # 'rpl' or 'erpl'
    term: str
    scope: frozenset[int] | None  # None means universal
    entry_count: int
    size_bytes: int

    def covers(self, sids: Iterable[int]) -> bool:
        """Can this segment answer a query restricted to *sids*?"""
        if self.scope is None:
            return True
        return set(sids) <= self.scope

    @property
    def is_universal(self) -> bool:
        return self.scope is None

    def describe(self) -> str:
        scope = "ALL" if self.scope is None else f"{len(self.scope)} sids"
        return (f"{self.kind.upper()}({self.term!r}, {scope}, "
                f"{self.entry_count} entries, {self.size_bytes} B)")


class IndexCatalog:
    """Registry plus storage for all RPL/ERPL segments."""

    def __init__(self, cost_model: CostModel | None = None, btree_order: int = 64):
        self.rpls = Table("RPLs", RPLS_SCHEMA, cost_model=cost_model,
                          btree_order=btree_order)
        self.erpls = Table("ERPLs", ERPLS_SCHEMA, cost_model=cost_model,
                           btree_order=btree_order)
        self._segments: dict[int, IndexSegment] = {}
        self._next_segment_id = 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_rpl_segment(self, term: str, entries: list[RplEntry],
                        scope: Iterable[int] | None = None) -> IndexSegment:
        """Store *entries* (already in descending-score order) as an RPL."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        before = self.rpls.size_bytes
        for rank, entry in enumerate(entries):
            self.rpls.insert((term, segment_id, rank, entry.score, entry.sid,
                              entry.docid, entry.endpos, entry.length))
        segment = IndexSegment(
            segment_id=segment_id,
            kind="rpl",
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=len(entries),
            size_bytes=self.rpls.size_bytes - before,
        )
        self._segments[segment_id] = segment
        return segment

    def add_erpl_segment(self, term: str, entries: list[RplEntry],
                         scope: Iterable[int] | None = None) -> IndexSegment:
        """Store *entries* as an ERPL (rows keyed by sid, then position)."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        before = self.erpls.size_bytes
        for entry in entries:
            self.erpls.insert((term, segment_id, entry.sid, entry.docid,
                               entry.endpos, entry.score, entry.length))
        segment = IndexSegment(
            segment_id=segment_id,
            kind="erpl",
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=len(entries),
            size_bytes=self.erpls.size_bytes - before,
        )
        self._segments[segment_id] = segment
        return segment

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def segments(self, kind: str | None = None) -> Iterator[IndexSegment]:
        for segment in self._segments.values():
            if kind is None or segment.kind == kind:
                yield segment

    def get_segment(self, segment_id: int) -> IndexSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise StorageError(f"unknown segment id {segment_id}") from None

    def find_segment(self, kind: str, term: str,
                     sids: Iterable[int]) -> IndexSegment | None:
        """Best segment of *kind* for *term* covering *sids*.

        Preference order: the segment with the smallest scope that still
        covers the requested sids (fewer entries to skip); a universal
        segment is the fallback.
        """
        sid_set = set(sids)
        best: IndexSegment | None = None
        for segment in self._segments.values():
            if segment.kind != kind or segment.term != term:
                continue
            if not segment.covers(sid_set):
                continue
            if best is None:
                best = segment
                continue
            best_rank = float("inf") if best.scope is None else len(best.scope)
            seg_rank = float("inf") if segment.scope is None else len(segment.scope)
            if seg_rank < best_rank:
                best = segment
        return best

    def require_segment(self, kind: str, term: str,
                        sids: Iterable[int]) -> IndexSegment:
        segment = self.find_segment(kind, term, sids)
        if segment is None:
            raise MissingIndexError(kind, term=term)
        return segment

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def drop_segment(self, segment_id: int) -> None:
        """Delete a segment's rows and unregister it."""
        segment = self.get_segment(segment_id)
        table = self.rpls if segment.kind == "rpl" else self.erpls
        keys = [tuple(row[: table.schema.key_length])
                for row in table.scan_prefix((segment.term, segment_id))]
        for key in keys:
            table.delete(key)
        del self._segments[segment_id]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(segment.size_bytes for segment in self._segments.values())

    def describe(self) -> list[str]:
        return [segment.describe() for segment in
                sorted(self._segments.values(), key=lambda s: s.segment_id)]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist the RPLs/ERPLs tables and the segment metadata."""
        import os
        os.makedirs(directory, exist_ok=True)
        self.rpls.save(os.path.join(directory, "rpls.tbl"))
        self.erpls.save(os.path.join(directory, "erpls.tbl"))
        lines = [f"{self._next_segment_id}"]
        for segment in sorted(self._segments.values(), key=lambda s: s.segment_id):
            scope = ("*" if segment.scope is None
                     else ",".join(str(sid) for sid in sorted(segment.scope)))
            lines.append("\t".join([
                str(segment.segment_id), segment.kind, segment.term, scope,
                str(segment.entry_count), str(segment.size_bytes)]))
        with open(os.path.join(directory, "segments.tsv"), "w",
                  encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

    def load(self, directory: str) -> None:
        """Replace this catalog's contents from a saved directory."""
        import os
        self.rpls.load(os.path.join(directory, "rpls.tbl"))
        self.erpls.load(os.path.join(directory, "erpls.tbl"))
        with open(os.path.join(directory, "segments.tsv"), encoding="utf-8") as fh:
            lines = [line.rstrip("\n") for line in fh if line.strip()]
        if not lines:
            raise StorageError(f"{directory}/segments.tsv is empty")
        self._next_segment_id = int(lines[0])
        self._segments = {}
        for line in lines[1:]:
            seg_id, kind, term, scope_text, entry_count, size_bytes = \
                line.split("\t")
            scope = (None if scope_text == "*" else
                     frozenset(int(s) for s in scope_text.split(",") if s))
            self._segments[int(seg_id)] = IndexSegment(
                segment_id=int(seg_id), kind=kind, term=term, scope=scope,
                entry_count=int(entry_count), size_bytes=int(size_bytes))
