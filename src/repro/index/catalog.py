"""The index catalog: which RPL/ERPL segments are materialized.

The paper's self-management problem is *which* redundant lists to keep:
"a system should store only the lists that contribute the most to the
efficiency of handling a given workload" (§4).  The catalog is the
registry the engine and the advisor share:

* a **segment** is one materialized list — an RPL or an ERPL — for one
  term, with a *scope*: either universal (``None``: entries for every
  extent containing the term) or a specific sid set (a query-scoped,
  usually much smaller, redundant index);
* each segment's entries are stored as a compressed
  :class:`~repro.storage.blocks.BlockSequence` — delta+varint blocks of
  ~128 entries with a resident skip directory of per-block headers —
  and ``size_bytes`` is the **compressed** footprint, which is what the
  advisor trades against the disk budget ``d``;
* a lookup finds the best (smallest superset-scope) segment usable to
  answer a query over a given sid set — using a superset segment is
  correct but costs skipping, which is exactly the TA behaviour the
  paper observes on universal lists.

Block layouts (cf. paper §2.2, fragmentation done block-per-run):

* RPL blocks: key ``(ir)`` — the descending-relevance rank, so reading
  blocks in order performs sorted access, and each header's
  ``max_score`` bounds everything at or below that rank (block-max);
* ERPL blocks: key ``(sid, docid, endpos)`` — per-(term, sid) ranges in
  position order, so Merge leaps (via ``first_key``/``last_key``) to a
  query's extents.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import MissingIndexError, StorageError
from ..index.rpl import (
    RplEntry,
    erpl_block_codec,
    erpl_block_entry,
    rpl_block_codec,
    rpl_block_entry,
    rpl_entry_from_block,
)
from ..storage.blocks import DEFAULT_BLOCK_SIZE, BlockSequence
from ..storage.cost import CostModel, GLOBAL_COST_MODEL
from ..storage.pager import PageCache

__all__ = ["IndexSegment", "IndexCatalog"]


@dataclass(frozen=True)
class IndexSegment:
    """Metadata for one materialized list."""

    segment_id: int
    kind: str  # 'rpl' or 'erpl'
    term: str
    scope: frozenset[int] | None  # None means universal
    entry_count: int
    size_bytes: int

    def covers(self, sids: Iterable[int]) -> bool:
        """Can this segment answer a query restricted to *sids*?"""
        if self.scope is None:
            return True
        return set(sids) <= self.scope

    @property
    def is_universal(self) -> bool:
        return self.scope is None

    def describe(self) -> str:
        scope = "ALL" if self.scope is None else f"{len(self.scope)} sids"
        return (f"{self.kind.upper()}({self.term!r}, {scope}, "
                f"{self.entry_count} entries, {self.size_bytes} B)")


class IndexCatalog:
    """Registry plus block storage for all RPL/ERPL segments."""

    def __init__(self, cost_model: CostModel | None = None,
                 btree_order: int = 64,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        # btree_order is accepted for call-site compatibility with the
        # row-store catalog; block storage has no tree fan-out to tune.
        del btree_order
        self.cost_model = (cost_model if cost_model is not None
                           else GLOBAL_COST_MODEL)
        self.block_size = block_size
        self._cache = PageCache(cost_model=self.cost_model)
        self._blocks: dict[int, BlockSequence] = {}
        self._segments: dict[int, IndexSegment] = {}
        self._next_segment_id = 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_rpl_segment(self, term: str, entries: list[RplEntry],
                        scope: Iterable[int] | None = None) -> IndexSegment:
        """Store *entries* (already in descending-score order) as an RPL."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        sequence = BlockSequence.build(
            (rpl_block_entry(rank, entry) for rank, entry in enumerate(entries)),
            rpl_block_codec(), block_size=self.block_size,
            cost_model=self.cost_model, cache=self._cache)
        segment = IndexSegment(
            segment_id=segment_id,
            kind="rpl",
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=len(entries),
            size_bytes=sequence.size_bytes,
        )
        self._blocks[segment_id] = sequence
        self._segments[segment_id] = segment
        return segment

    def add_erpl_segment(self, term: str, entries: list[RplEntry],
                         scope: Iterable[int] | None = None) -> IndexSegment:
        """Store *entries* as an ERPL (blocks keyed by sid, then position)."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        ordered = sorted(erpl_block_entry(entry) for entry in entries)
        sequence = BlockSequence.build(
            ordered, erpl_block_codec(), block_size=self.block_size,
            cost_model=self.cost_model, cache=self._cache)
        segment = IndexSegment(
            segment_id=segment_id,
            kind="erpl",
            term=term,
            scope=None if scope is None else frozenset(scope),
            entry_count=len(entries),
            size_bytes=sequence.size_bytes,
        )
        self._blocks[segment_id] = sequence
        self._segments[segment_id] = segment
        return segment

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def segments(self, kind: str | None = None) -> Iterator[IndexSegment]:
        for segment in self._segments.values():
            if kind is None or segment.kind == kind:
                yield segment

    def get_segment(self, segment_id: int) -> IndexSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise StorageError(f"unknown segment id {segment_id}") from None

    def find_segment(self, kind: str, term: str,
                     sids: Iterable[int]) -> IndexSegment | None:
        """Best segment of *kind* for *term* covering *sids*.

        Preference order: the segment with the smallest scope that still
        covers the requested sids (fewer entries to skip); a universal
        segment is the fallback.
        """
        sid_set = set(sids)
        best: IndexSegment | None = None
        for segment in self._segments.values():
            if segment.kind != kind or segment.term != term:
                continue
            if not segment.covers(sid_set):
                continue
            if best is None:
                best = segment
                continue
            best_rank = float("inf") if best.scope is None else len(best.scope)
            seg_rank = float("inf") if segment.scope is None else len(segment.scope)
            if seg_rank < best_rank:
                best = segment
        return best

    def require_segment(self, kind: str, term: str,
                        sids: Iterable[int]) -> IndexSegment:
        segment = self.find_segment(kind, term, sids)
        if segment is None:
            raise MissingIndexError(kind, term=term)
        return segment

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------
    def blocks_for(self, segment: IndexSegment) -> BlockSequence:
        """The block sequence holding *segment*'s entries."""
        try:
            return self._blocks[segment.segment_id]
        except KeyError:
            raise StorageError(
                f"segment {segment.segment_id} has no block storage") from None

    def segment_entries(self, segment: IndexSegment) -> list[RplEntry]:
        """All of *segment*'s entries, uncharged (maintenance path).

        RPL segments come back in rank (descending-score) order, ERPL
        segments in sid-major position order.
        """
        sequence = self.blocks_for(segment)
        if segment.kind == "rpl":
            # repro: allow[TRX201] documented uncharged maintenance path
            return [rpl_entry_from_block(row) for row in sequence.entries()]
        return [RplEntry(score, sid, docid, endpos, length)
                # repro: allow[TRX201] documented uncharged maintenance path
                for sid, docid, endpos, score, length in sequence.entries()]

    def erpl_probe(self, segment: IndexSegment, sid: int, docid: int,
                   endpos: int) -> float | None:
        """Random access into an ERPL: the element's score, or ``None``.

        Charged as one positioning seek plus whatever block the skip
        directory lands on — the paper's cited TA-with-random-accesses
        pays this per probe.
        """
        sequence = self.blocks_for(segment)
        self.cost_model.seek()
        key = (sid, docid, endpos)
        index = sequence.find_first_block_ge(key)
        if index >= sequence.block_count:
            return None
        if sequence.headers[index].first_key > key:
            return None
        entries = sequence.read_block(index)
        lo, hi = 0, len(entries)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if entries[mid][:3] < key:
                lo = mid + 1
            else:
                hi = mid
        if steps:
            self.cost_model.compare(steps)
        if lo < len(entries) and entries[lo][:3] == key:
            self.cost_model.tuple_read()
            return entries[lo][3]
        return None

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def drop_segment(self, segment_id: int) -> None:
        """Delete a segment's blocks and unregister it."""
        self.get_segment(segment_id)
        sequence = self._blocks.pop(segment_id, None)
        if sequence is not None:
            sequence.invalidate()
        del self._segments[segment_id]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(segment.size_bytes for segment in self._segments.values())

    def describe(self) -> list[str]:
        return [segment.describe() for segment in
                sorted(self._segments.values(), key=lambda s: s.segment_id)]

    def use_cache(self, cache: PageCache) -> None:
        """Route every segment's block residency through *cache*."""
        self._cache = cache
        for sequence in self._blocks.values():
            sequence.use_cache(cache)

    def cache_stats(self) -> dict[str, int | float]:
        """Residency statistics of the catalog's block cache."""
        return {
            "capacity": self._cache.capacity,
            "resident": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "evictions": self._cache.evictions,
            "hit_rate": round(self._cache.hit_rate, 4),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist every segment's blocks and the segment metadata."""
        os.makedirs(directory, exist_ok=True)
        lines = [f"{self._next_segment_id}"]
        for segment in sorted(self._segments.values(), key=lambda s: s.segment_id):
            scope = ("*" if segment.scope is None
                     else ",".join(str(sid) for sid in sorted(segment.scope)))
            lines.append("\t".join([
                str(segment.segment_id), segment.kind, segment.term, scope,
                str(segment.entry_count), str(segment.size_bytes)]))
            self._blocks[segment.segment_id].save(
                os.path.join(directory, f"seg{segment.segment_id}.blk"))
        with open(os.path.join(directory, "segments.tsv"), "w",
                  encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

    def load(self, directory: str) -> None:
        """Replace this catalog's contents from a saved directory."""
        with open(os.path.join(directory, "segments.tsv"), encoding="utf-8") as fh:
            lines = [line.rstrip("\n") for line in fh if line.strip()]
        if not lines:
            raise StorageError(f"{directory}/segments.tsv is empty")
        self._next_segment_id = int(lines[0])
        self._segments = {}
        self._blocks = {}
        for line in lines[1:]:
            seg_id, kind, term, scope_text, entry_count, size_bytes = \
                line.split("\t")
            scope = (None if scope_text == "*" else
                     frozenset(int(s) for s in scope_text.split(",") if s))
            segment = IndexSegment(
                segment_id=int(seg_id), kind=kind, term=term, scope=scope,
                entry_count=int(entry_count), size_bytes=int(size_bytes))
            codec = rpl_block_codec() if kind == "rpl" else erpl_block_codec()
            self._segments[segment.segment_id] = segment
            self._blocks[segment.segment_id] = BlockSequence.load(
                os.path.join(directory, f"seg{segment.segment_id}.blk"),
                codec, cost_model=self.cost_model, cache=self._cache)
