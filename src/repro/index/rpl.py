"""Builders for relevance posting lists (RPLs) and element RPLs (ERPLs).

An RPL of a term ``t`` stores scored elements containing ``t`` in
*descending relevance* order — the sorted-access lists the threshold
algorithm consumes.  An ERPL stores the same entries in *position*
order, grouped by sid — what the Merge algorithm consumes (paper §2.2).

Entry computation walks each document bottom-up, so an element's term
frequency counts every occurrence in its subtree, exactly as the ERA
algorithm would produce when asked to extend these tables (paper §3.2:
"TReX also uses ERA for generating or extending the RPLs and ERPLs
tables"; :meth:`repro.retrieval.era` is tested to agree with this
builder).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Collection as AbstractCollection

from ..corpus.collection import Collection
from ..corpus.document import Document, XMLNode
from ..scoring.scorers import ElementScorer
from ..storage.serialization import BlockCodec, FloatCodec, UIntCodec
from ..summary.base import PartitionSummary

__all__ = [
    "RplEntry",
    "compute_rpl_entries",
    "term_positions_by_document",
    "rpl_block_codec",
    "erpl_block_codec",
    "rpl_block_entry",
    "erpl_block_entry",
    "rpl_entry_from_block",
    "erpl_entry_from_block",
]


class RplEntry(tuple):
    """A scored element entry: (score, sid, docid, endpos, length).

    The paper's 5-tuple (§2.2): "(1) a relevance score, (2) an sid,
    (3) a document identifier, (4) an offset to end position, and
    (5) a length".  Implemented as a tuple subclass so entries stay
    cheap and hashable while giving named access.
    """

    __slots__ = ()

    def __new__(cls, score: float, sid: int, docid: int, endpos: int,
                length: int) -> "RplEntry":
        return super().__new__(cls, (float(score), sid, docid, endpos, length))

    @property
    def score(self) -> float:
        return self[0]

    @property
    def sid(self) -> int:
        return self[1]

    @property
    def docid(self) -> int:
        return self[2]

    @property
    def endpos(self) -> int:
        return self[3]

    @property
    def length(self) -> int:
        return self[4]

    @property
    def startpos(self) -> int:
        return self[3] - self[4]

    def element_key(self) -> tuple[int, int]:
        return (self[2], self[3])


def rpl_block_codec() -> BlockCodec:
    """Block layout for RPL segments: key ``(ir,)`` — the descending-
    relevance rank, so block order *is* sorted access — and payload
    ``(score, sid, docid, endpos, length)``."""
    return BlockCodec(
        key_width=1,
        payload_codecs=(FloatCodec(), UIntCodec(), UIntCodec(),
                        UIntCodec(), UIntCodec()),
        score_index=1,
    )


def erpl_block_codec() -> BlockCodec:
    """Block layout for ERPL segments: key ``(sid, docid, endpos)`` —
    sid-major position order, so Merge seeks by key — and payload
    ``(score, length)``."""
    return BlockCodec(
        key_width=3,
        payload_codecs=(FloatCodec(), UIntCodec()),
        score_index=3,
    )


def rpl_block_entry(rank: int, entry: RplEntry) -> tuple:
    """An RPL entry as the flat block tuple ``(ir, score, sid, ...)``."""
    return (rank, entry.score, entry.sid, entry.docid,
            entry.endpos, entry.length)


def erpl_block_entry(entry: RplEntry) -> tuple:
    """An ERPL entry as the flat block tuple ``(sid, docid, endpos, ...)``."""
    return (entry.sid, entry.docid, entry.endpos, entry.score, entry.length)


def rpl_entry_from_block(row: tuple) -> RplEntry:
    _ir, score, sid, docid, endpos, length = row
    return RplEntry(score, sid, docid, endpos, length)


def erpl_entry_from_block(row: tuple) -> RplEntry:
    sid, docid, endpos, score, length = row
    return RplEntry(score, sid, docid, endpos, length)


def term_positions_by_document(document: Document, term: str) -> list[int]:
    """Sorted token positions of *term* within *document*."""
    return [occ.position for occ in document.tokens if occ.term == term]


def _element_tf(node: XMLNode, sorted_positions: list[int]) -> int:
    """Occurrences of the term strictly inside *node*'s span."""
    lo = bisect_right(sorted_positions, node.start_pos)
    hi = bisect_left(sorted_positions, node.end_pos)
    return hi - lo


def compute_rpl_entries(collection: Collection, summary: PartitionSummary,
                        term: str, scorer: ElementScorer,
                        sids: AbstractCollection[int] | None = None) -> list[RplEntry]:
    """All scored-element entries of *term*, in descending score order.

    ``sids=None`` builds the *universal* list (every element that
    contains the term, whatever its extent); passing a sid set builds a
    query-scoped list restricted to those extents — the redundant
    indexes the self-managing advisor materializes.
    """
    sid_filter = None if sids is None else set(sids)
    entries: list[RplEntry] = []
    for document in collection:
        positions = term_positions_by_document(document, term)
        if not positions:
            continue
        docid = document.docid
        for node in document.elements():
            sid = summary.sid_of(docid, node.end_pos)
            if sid_filter is not None and sid not in sid_filter:
                continue
            tf = _element_tf(node, positions)
            if tf == 0:
                continue
            score = scorer.score(term, tf, node.length)
            if score <= 0.0:
                continue
            entries.append(RplEntry(score, sid, docid, node.end_pos, node.length))
    # Descending score; position order breaks ties deterministically.
    entries.sort(key=lambda e: (-e.score, e.docid, e.endpos))
    return entries
