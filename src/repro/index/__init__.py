"""Physical indexes: Elements, PostingLists, RPL/ERPL segments, catalog."""

from .catalog import IndexCatalog, IndexSegment
from .elements import ELEMENTS_SCHEMA, BlockedElements, build_elements_table
from .postings import (
    DEFAULT_FRAGMENT_SIZE,
    POSTING_LISTS_SCHEMA,
    BlockedPostings,
    build_posting_lists_table,
)
from .rpl import (
    RplEntry,
    compute_rpl_entries,
    erpl_block_codec,
    rpl_block_codec,
    term_positions_by_document,
)

__all__ = [
    "IndexCatalog",
    "IndexSegment",
    "ELEMENTS_SCHEMA",
    "BlockedElements",
    "build_elements_table",
    "DEFAULT_FRAGMENT_SIZE",
    "POSTING_LISTS_SCHEMA",
    "BlockedPostings",
    "build_posting_lists_table",
    "RplEntry",
    "compute_rpl_entries",
    "erpl_block_codec",
    "rpl_block_codec",
    "term_positions_by_document",
]
