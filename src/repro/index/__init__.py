"""Physical indexes: Elements, PostingLists, RPL/ERPL segments, catalog."""

from .catalog import ERPLS_SCHEMA, IndexCatalog, IndexSegment, RPLS_SCHEMA
from .elements import ELEMENTS_SCHEMA, build_elements_table
from .postings import (
    DEFAULT_FRAGMENT_SIZE,
    POSTING_LISTS_SCHEMA,
    build_posting_lists_table,
)
from .rpl import RplEntry, compute_rpl_entries, term_positions_by_document

__all__ = [
    "ERPLS_SCHEMA",
    "IndexCatalog",
    "IndexSegment",
    "RPLS_SCHEMA",
    "ELEMENTS_SCHEMA",
    "build_elements_table",
    "DEFAULT_FRAGMENT_SIZE",
    "POSTING_LISTS_SCHEMA",
    "build_posting_lists_table",
    "RplEntry",
    "compute_rpl_entries",
    "term_positions_by_document",
]
