"""TRX301/TRX302/TRX303 — determinism of the golden-path modules.

Index construction, scoring and evaluation must be reproducible: the
same corpus and the same query must produce byte-identical indexes and
rankings.  Three hazard classes break that:

* wall-clock reads (``time.time`` & friends, ``datetime.now``) leaking
  into computed results (TRX301) — telemetry and the serving layer are
  out of scope, they are *supposed* to measure wall-clock;
* unseeded randomness: bare ``random.random()`` / ``random.shuffle``
  module-level calls, or ``random.Random()`` constructed without a seed
  (TRX302);
* iterating directly over a set literal / ``set()`` call, whose order
  varies across interpreter runs with hash randomization (TRX303).
  Iterating named set variables is allowed — flagging every such loop
  would drown the signal — the rule targets the obviously-unordered
  inline form.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import attr_chain

__all__ = ["DeterminismChecker"]

_SCOPES = (
    "repro.retrieval", "repro.index", "repro.storage", "repro.scoring",
    "repro.summary", "repro.nexi", "repro.evaluation", "repro.corpus",
    "repro.selfmanage",
)
_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "thread_time"), ("time", "time_ns"),
    ("time", "monotonic_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}
_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "random_bytes", "getrandbits",
}


class DeterminismChecker:
    name = "determinism"
    rules = (
        Rule("TRX301", "no wall-clock reads in deterministic golden-path "
                       "modules"),
        Rule("TRX302", "no unseeded randomness in deterministic modules"),
        Rule("TRX303", "no iteration directly over set literals/constructors "
                       "(order varies under hash randomization)"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        random_aliases = self._random_class_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, random_aliases)
            elif isinstance(node, ast.For):
                yield from self._check_iterable(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iterable(module, generator.iter)

    def _random_class_aliases(self, tree: ast.Module) -> set[str]:
        """Local names bound to ``random.Random`` via from-imports."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in ("Random", "SystemRandom"):
                        aliases.add(alias.asname or alias.name)
        return aliases

    def _check_call(self, module: Module, node: ast.Call,
                    random_aliases: set[str]) -> Iterator[Finding]:
        chain = attr_chain(node.func)
        if len(chain) >= 2 and (chain[-2], chain[-1]) in _CLOCK_CALLS:
            yield Finding(
                "TRX301", module.path, node.lineno, node.col_offset + 1,
                f"wall-clock call {'.'.join(chain)}() in a deterministic "
                f"module; results must not depend on the clock")
            return
        if chain[:1] == ["random"] and len(chain) == 2:
            if chain[1] in _RANDOM_FUNCS:
                yield Finding(
                    "TRX302", module.path, node.lineno, node.col_offset + 1,
                    f"module-level random.{chain[1]}() uses the shared "
                    f"unseeded generator; construct random.Random(seed)")
            elif chain[1] == "Random" and not (node.args or node.keywords):
                yield Finding(
                    "TRX302", module.path, node.lineno, node.col_offset + 1,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed")
        elif (len(chain) == 1 and chain[0] in random_aliases
              and not (node.args or node.keywords)):
            yield Finding(
                "TRX302", module.path, node.lineno, node.col_offset + 1,
                f"{chain[0]}() without a seed is nondeterministic; "
                f"pass an explicit seed")

    def _check_iterable(self, module: Module,
                        iterable: ast.expr) -> Iterator[Finding]:
        unordered = False
        if isinstance(iterable, ast.Set):
            unordered = True
        elif isinstance(iterable, ast.Call):
            chain = attr_chain(iterable.func)
            if chain in (["set"], ["frozenset"]):
                unordered = True
        if unordered:
            yield Finding(
                "TRX303", module.path, iterable.lineno,
                iterable.col_offset + 1,
                "iterating a set literal/constructor directly; order is "
                "hash-randomized — sort it or use a sequence")
