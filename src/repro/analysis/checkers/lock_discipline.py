"""TRX101/TRX102/TRX103 — lock discipline in the serving layers.

Classes declare which mutex guards which attributes::

    class Autopilot:
        __guarded_by__ = {"_cycle_lock": ("cycles", "last_report")}

The intra-function rule then requires every write to a guarded
attribute (plain attribute assignment, augmented assignment, or a
subscript store on the attribute) to happen

* inside ``with self.<lock>:`` (or ``with <x>.<lock>:``) for a plain
  mutex, or ``with <x>.<lock>.write():`` for a reader-writer lock —
  local aliases (``lock = self._lock; with lock:``) are resolved — or
* inside a function whose name ends in ``_locked`` (the repo-wide
  convention for "caller holds the lock"), or
* inside ``__init__``/``__post_init__``/``__new__`` (construction is
  single-threaded), or
* inside a function decorated with ``mutates_engine_state`` (the
  runtime sanitizer enforces the writer-side contract instead).

A guarded write that is lexically under the *read* side of an RW lock
(``with <x>.<lock>.read():``) is its own rule, TRX102 — that is the
"mutating the engine under a read lock" bug class the serving
invariants forbid.

With the whole-program engine, the ``*_locked`` convention is no longer
a blind spot: a ``*_locked`` function's uncovered guarded writes become
a *lock requirement* propagated up the call graph — every call site
must hold the lock, pass the buck through another ``*_locked`` frame,
or be a constructor/decorated mutator; the first caller that does none
of these gets the TRX101 (or, under a read lock, TRX102) at its call
site.  TRX103 adds static lock-order checking: each ``with``
acquisition made while other locks are (lexically or interprocedurally)
held contributes an ordering edge, and any cycle in that graph is a
potential ABBA deadlock the runtime sanitizer could only catch by
actually interleaving.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..core import Finding, Module, Rule
from . import terminal_attr

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..flow.project import Project
    from ..flow.summaries import LockViolation

__all__ = ["LockDisciplineChecker"]

_EXEMPT_FUNCTIONS = {"__init__", "__post_init__", "__new__", "__del__"}
_EXEMPT_DECORATORS = {"mutates_engine_state"}
_SCOPES = ("repro.service", "repro.shard", "repro.replica")

_MEMO_REQUIREMENTS = "lock.requirement_violations"
_MEMO_CYCLES = "lock.order_cycles"


def _guarded_declarations(tree: ast.Module) -> dict[str, str]:
    """Module-wide ``attribute name -> guarding lock attribute`` map."""
    guarded: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for statement in node.body:
            if not isinstance(statement, ast.Assign):
                continue
            if not any(isinstance(target, ast.Name)
                       and target.id == "__guarded_by__"
                       for target in statement.targets):
                continue
            if not isinstance(statement.value, ast.Dict):
                continue
            for key, value in zip(statement.value.keys,
                                  statement.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        if (isinstance(element, ast.Constant)
                                and isinstance(element.value, str)):
                            guarded[element.value] = key.value
    return guarded


def _with_guards(item: ast.withitem,
                 aliases: dict[str, str]) -> tuple[str, str] | None:
    """``(lock attribute, side)`` for one with-item, if lock-shaped.

    ``with self._lock:`` -> ``("_lock", "plain")``;
    ``with self.lock.write():`` -> ``("lock", "write")``;
    ``with self.lock.read():`` -> ``("lock", "read")``.
    A bare name (``with lock:``) resolves through local aliases
    recorded from ``lock = self._lock``-style assignments.
    """
    def resolve(expr: ast.expr) -> str | None:
        name = terminal_attr(expr)
        if name is not None and isinstance(expr, ast.Name):
            return aliases.get(name, name)
        return name

    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        side = expr.func.attr
        if side in ("write", "read"):
            lock = resolve(expr.func.value)
            if lock is not None:
                return lock, side
        return None
    lock = resolve(expr)
    if lock is not None:
        return lock, "plain"
    return None


def _written_attrs(statement: ast.stmt) -> list[tuple[str, int, int]]:
    """Guardable attribute names written by one statement."""
    targets: list[ast.expr] = []
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
        targets = [statement.target]
    written: list[tuple[str, int, int]] = []
    stack = targets
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Attribute):
            written.append((target.attr, target.lineno, target.col_offset))
        elif isinstance(target, ast.Subscript):
            attr = terminal_attr(target.value)
            if attr is not None and isinstance(target.value, ast.Attribute):
                written.append((attr, target.lineno, target.col_offset))
    return written


def _record_alias(statement: ast.stmt, aliases: dict[str, str]) -> None:
    """Track ``lock = self._lock`` / ``lk = group._state_lock`` aliases."""
    if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
        return
    target = statement.targets[0]
    if not isinstance(target, ast.Name):
        return
    if isinstance(statement.value, ast.Attribute):
        aliases[target.id] = statement.value.attr
    elif target.id in aliases:
        del aliases[target.id]


class LockDisciplineChecker:
    name = "lock-discipline"
    rules = (
        Rule("TRX101", "writes to __guarded_by__ attributes must hold the "
                       "declared lock (or run in a *_locked function whose "
                       "callers hold it)"),
        Rule("TRX102", "guarded attributes must not be written under the "
                       "read side of an RW lock"),
        Rule("TRX103", "the static lock-order graph (with-acquisitions "
                       "under held locks, across calls) must be acyclic"),
    )

    def check(self, module: Module,
              project: "Project | None" = None) -> Iterator[Finding]:
        if module.in_package(*_SCOPES):
            guarded = _guarded_declarations(module.tree)
            if guarded:
                yield from self._walk(module, module.tree.body, guarded,
                                      active=(), exempt=False, aliases={})
        if project is not None:
            yield from self._interprocedural(module, project)
            yield from self._lock_order(module, project)

    # ------------------------------------------------------------------
    # Intra-function rule (alias-aware)
    # ------------------------------------------------------------------
    def _walk(self, module: Module, body: list[ast.stmt],
              guarded: dict[str, str], active: tuple[tuple[str, str], ...],
              exempt: bool, aliases: dict[str, str]) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(
                    module, statement.body, guarded, active,
                    exempt=self._exempt_function(statement), aliases={})
                continue
            if isinstance(statement, ast.ClassDef):
                yield from self._walk(module, statement.body, guarded,
                                      active, exempt=False, aliases={})
                continue
            _record_alias(statement, aliases)
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                entered = tuple(
                    guard for guard in
                    (_with_guards(item, aliases)
                     for item in statement.items)
                    if guard is not None)
                yield from self._walk(module, statement.body, guarded,
                                      active + entered, exempt, aliases)
                continue
            if not exempt:
                yield from self._check_statement(module, statement,
                                                 guarded, active)
            # Compound statements (if/for/try/...) need their blocks
            # walked with the same guard context.
            for field in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field, None)
                if blocks:
                    yield from self._walk(module, blocks, guarded,
                                          active, exempt, aliases)
            for handler in getattr(statement, "handlers", []) or []:
                yield from self._walk(module, handler.body, guarded,
                                      active, exempt, aliases)

    def _exempt_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        if node.name in _EXEMPT_FUNCTIONS or node.name.endswith("_locked"):
            return True
        for decorator in node.decorator_list:
            name = terminal_attr(decorator if not isinstance(decorator, ast.Call)
                                 else decorator.func)
            if name in _EXEMPT_DECORATORS:
                return True
        return False

    def _check_statement(self, module: Module, statement: ast.stmt,
                         guarded: dict[str, str],
                         active: tuple[tuple[str, str], ...]) -> Iterator[Finding]:
        if not isinstance(statement, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            return
        for attr, line, col in _written_attrs(statement):
            lock = guarded.get(attr)
            if lock is None:
                continue
            sides = {side for name, side in active if name == lock}
            if "plain" in sides or "write" in sides:
                continue
            if "read" in sides:
                yield Finding(
                    "TRX102", module.path, line, col + 1,
                    f"write to {attr!r} under the read side of "
                    f"{lock!r}; mutations need the writer side")
            else:
                yield Finding(
                    "TRX101", module.path, line, col + 1,
                    f"write to {attr!r} without holding {lock!r} "
                    f"(declared in __guarded_by__)")

    # ------------------------------------------------------------------
    # Cross-function requirements and lock order
    # ------------------------------------------------------------------
    def _interprocedural(self, module: Module,
                         project: "Project") -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        violations = project.memo.get(_MEMO_REQUIREMENTS)
        if violations is None:
            from ..flow.summaries import lock_requirement_violations
            violations = lock_requirement_violations(project)
            project.memo[_MEMO_REQUIREMENTS] = violations
        assert isinstance(violations, list)
        for violation in violations:
            self._narrow_violation(violation)
            if violation.site.path != module.path:
                continue
            target_name = violation.target.rsplit(".", 1)[-1]
            if violation.rule == "TRX102":
                yield Finding(
                    "TRX102", violation.site.path, violation.site.line,
                    violation.site.col + 1,
                    f"call to {violation.site.callee_name}() under the "
                    f"read side of {violation.lock.attr!r}, but "
                    f"{target_name}() writes state guarded by it")
            else:
                yield Finding(
                    "TRX101", violation.site.path, violation.site.line,
                    violation.site.col + 1,
                    f"call to {violation.site.callee_name}() without "
                    f"holding {violation.lock.attr!r}, which "
                    f"{target_name}() requires for its guarded writes")

    @staticmethod
    def _narrow_violation(violation: "LockViolation") -> None:
        """Typing helper: assert the memoized element type."""
        from ..flow.summaries import LockViolation
        assert isinstance(violation, LockViolation)

    def _lock_order(self, module: Module,
                    project: "Project") -> Iterator[Finding]:
        cycles = project.memo.get(_MEMO_CYCLES)
        if cycles is None:
            from ..flow.summaries import lock_order_cycles
            cycles = lock_order_cycles(project)
            project.memo[_MEMO_CYCLES] = cycles
        assert isinstance(cycles, list)
        emitted: set[tuple[str, int]] = set()
        for locks, edges in cycles:
            rendered = " -> ".join(lock.attr for lock in locks)
            for edge in edges:
                if edge.path != module.path:
                    continue
                mark = (edge.path, edge.line)
                if mark in emitted:
                    continue
                emitted.add(mark)
                yield Finding(
                    "TRX103", edge.path, edge.line, edge.col + 1,
                    f"acquiring {edge.inner.attr!r} while holding "
                    f"{edge.outer.attr!r} completes a lock-order cycle "
                    f"({rendered}); a concurrent opposite-order "
                    f"acquisition can deadlock")
