"""TRX101/TRX102 — lock discipline in the serving and shard layers.

Classes declare which mutex guards which attributes::

    class Autopilot:
        __guarded_by__ = {"_cycle_lock": ("cycles", "last_report")}

The checker then requires every write to a guarded attribute (plain
attribute assignment, augmented assignment, or a subscript store on the
attribute) to happen

* inside ``with self.<lock>:`` (or ``with <x>.<lock>:``) for a plain
  mutex, or ``with <x>.<lock>.write():`` for a reader-writer lock, or
* inside a function whose name ends in ``_locked`` (the repo-wide
  convention for "caller holds the lock"), or
* inside ``__init__``/``__post_init__``/``__new__`` (construction is
  single-threaded), or
* inside a function decorated with ``mutates_engine_state`` (the
  runtime sanitizer enforces the writer-side contract instead).

A guarded write that is lexically under the *read* side of an RW lock
(``with <x>.<lock>.read():``) is its own rule, TRX102 — that is the
"mutating the engine under a read lock" bug class the serving
invariants forbid.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import terminal_attr

__all__ = ["LockDisciplineChecker"]

_EXEMPT_FUNCTIONS = {"__init__", "__post_init__", "__new__", "__del__"}
_EXEMPT_DECORATORS = {"mutates_engine_state"}
_SCOPES = ("repro.service", "repro.shard", "repro.replica")


def _guarded_declarations(tree: ast.Module) -> dict[str, str]:
    """Module-wide ``attribute name -> guarding lock attribute`` map."""
    guarded: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for statement in node.body:
            if not isinstance(statement, ast.Assign):
                continue
            if not any(isinstance(target, ast.Name)
                       and target.id == "__guarded_by__"
                       for target in statement.targets):
                continue
            if not isinstance(statement.value, ast.Dict):
                continue
            for key, value in zip(statement.value.keys,
                                  statement.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        if (isinstance(element, ast.Constant)
                                and isinstance(element.value, str)):
                            guarded[element.value] = key.value
    return guarded


def _with_guards(item: ast.withitem) -> tuple[str, str] | None:
    """``(lock attribute, side)`` for one with-item, if lock-shaped.

    ``with self._lock:`` -> ``("_lock", "plain")``;
    ``with self.lock.write():`` -> ``("lock", "write")``;
    ``with self.lock.read():`` -> ``("lock", "read")``.
    """
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        side = expr.func.attr
        if side in ("write", "read"):
            lock = terminal_attr(expr.func.value)
            if lock is not None:
                return lock, side
        return None
    lock = terminal_attr(expr)
    if lock is not None:
        return lock, "plain"
    return None


def _written_attrs(statement: ast.stmt) -> list[tuple[str, int, int]]:
    """Guardable attribute names written by one statement."""
    targets: list[ast.expr] = []
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
        targets = [statement.target]
    written: list[tuple[str, int, int]] = []
    stack = targets
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Attribute):
            written.append((target.attr, target.lineno, target.col_offset))
        elif isinstance(target, ast.Subscript):
            attr = terminal_attr(target.value)
            if attr is not None and isinstance(target.value, ast.Attribute):
                written.append((attr, target.lineno, target.col_offset))
    return written


class LockDisciplineChecker:
    name = "lock-discipline"
    rules = (
        Rule("TRX101", "writes to __guarded_by__ attributes must hold the "
                       "declared lock (or run in a *_locked function)"),
        Rule("TRX102", "guarded attributes must not be written under the "
                       "read side of an RW lock"),
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        guarded = _guarded_declarations(module.tree)
        if not guarded:
            return
        yield from self._walk(module, module.tree.body, guarded,
                              active=(), exempt=False)

    def _walk(self, module: Module, body: list[ast.stmt],
              guarded: dict[str, str], active: tuple[tuple[str, str], ...],
              exempt: bool) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(
                    module, statement.body, guarded, active,
                    exempt=self._exempt_function(statement))
                continue
            if isinstance(statement, ast.ClassDef):
                yield from self._walk(module, statement.body, guarded,
                                      active, exempt=False)
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                entered = tuple(
                    guard for guard in map(_with_guards, statement.items)
                    if guard is not None)
                yield from self._walk(module, statement.body, guarded,
                                      active + entered, exempt)
                continue
            if not exempt:
                yield from self._check_statement(module, statement,
                                                 guarded, active)
            # Compound statements (if/for/try/...) need their blocks
            # walked with the same guard context.
            for field in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field, None)
                if blocks:
                    yield from self._walk(module, blocks, guarded,
                                          active, exempt)
            for handler in getattr(statement, "handlers", []) or []:
                yield from self._walk(module, handler.body, guarded,
                                      active, exempt)

    def _exempt_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        if node.name in _EXEMPT_FUNCTIONS or node.name.endswith("_locked"):
            return True
        for decorator in node.decorator_list:
            name = terminal_attr(decorator if not isinstance(decorator, ast.Call)
                                 else decorator.func)
            if name in _EXEMPT_DECORATORS:
                return True
        return False

    def _check_statement(self, module: Module, statement: ast.stmt,
                         guarded: dict[str, str],
                         active: tuple[tuple[str, str], ...]) -> Iterator[Finding]:
        if not isinstance(statement, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            return
        for attr, line, col in _written_attrs(statement):
            lock = guarded.get(attr)
            if lock is None:
                continue
            sides = {side for name, side in active if name == lock}
            if "plain" in sides or "write" in sides:
                continue
            if "read" in sides:
                yield Finding(
                    "TRX102", module.path, line, col + 1,
                    f"write to {attr!r} under the read side of "
                    f"{lock!r}; mutations need the writer side")
            else:
                yield Finding(
                    "TRX101", module.path, line, col + 1,
                    f"write to {attr!r} without holding {lock!r} "
                    f"(declared in __guarded_by__)")
