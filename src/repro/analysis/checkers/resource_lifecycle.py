"""TRX801/TRX802/TRX803 — resource lifecycle on every path.

The storage stack's correctness story is *publish-or-abort*: a staged
backend write either reaches ``sync()`` + ``close()`` or is abandoned
by ``close()`` with the previous on-disk state intact.  That only holds
if the backend object actually reaches ``close()`` on **every** path —
including the exceptional ones, which is exactly where leak bugs hide.
These rules run a per-function CFG (with may-raise edges) over every
tracked acquisition:

* **TRX801** — a ``make_backend(...)``/``open_backend(...)`` result
  bound to a local must be closed on every exit: a ``with`` block, a
  ``try/finally`` calling ``close()``, returning it, or storing it on
  an attribute (ownership transfer) all discharge the obligation.
* **TRX802** — same check for raw handles: ``open(...)``,
  ``sqlite3.connect(...)``, ``mmap.mmap(...)``, ``os.fdopen(...)``.
* **TRX803** — staging state must never escape a backend: a ``return``
  or ``yield`` whose expression references a staging path/attribute
  (``*staging*``) publishes a path that only ``os.replace`` may
  consume.

Only the simple ``var = acquire(...)`` form is tracked; acquisitions
consumed directly by a ``with`` statement are already safe by
construction, and tuple-unpacked or attribute-stored acquisitions are
ownership transfers the intra-function CFG cannot (and need not)
follow.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..core import Finding, Module, Rule
from . import terminal_attr

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..flow.cfg import Node
    from ..flow.project import Project

__all__ = ["ResourceLifecycleChecker"]

_BACKEND_ACQUIRERS = frozenset({"make_backend", "open_backend"})
_HANDLE_ACQUIRERS = frozenset({"open", "connect", "fdopen", "mmap"})
#: "staging" names a *location* (the temp path publish-or-abort hinges
#: on); "staged" content read back through the write-mode API is the
#: backend working as intended and is deliberately not matched.
_STAGING_MARKERS = ("staging",)
_BACKEND_SCOPE = ("repro.backend",)


def _acquisitions(func: ast.FunctionDef | ast.AsyncFunctionDef
                  ) -> list[tuple[ast.Assign, str, str]]:
    """``(assign, var, rule)`` for each tracked acquisition statement."""
    found: list[tuple[ast.Assign, str, str]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        callee = terminal_attr(value.func)
        if callee in _BACKEND_ACQUIRERS:
            found.append((node, target.id, "TRX801"))
        elif callee in _HANDLE_ACQUIRERS:
            found.append((node, target.id, "TRX802"))
    return found


def _references(expr: ast.AST, var: str) -> bool:
    return any(isinstance(node, ast.Name) and node.id == var
               for node in ast.walk(expr))


def _discharges(node: "Node", var: str) -> bool:
    """Does this CFG node release/transfer ownership of *var*?"""
    stmt = node.stmt
    if stmt is None:
        return False
    if node.kind == "with":
        # `with var:` / `with closing(var):` — the context manager owns
        # the release from here on.
        return _references(stmt, var)
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _references(stmt.value, var)
    if isinstance(stmt, ast.Assign):
        # Rebinding ends tracking; storing onto an attribute/subscript
        # transfers ownership to the holder.
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == var:
                return True
            if (isinstance(target, (ast.Attribute, ast.Subscript))
                    and isinstance(stmt.value, ast.Name)
                    and stmt.value.id == var):
                return True
    # Any statement performing var.close() counts as closing even if
    # the close itself raises (nothing more we could do on that path).
    for child in ast.walk(stmt):
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "close"
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id == var):
            return True
    return False


def _staging_reference(expr: ast.expr) -> str | None:
    """The staging-marked name *expr* mentions, if any."""
    for node in ast.walk(expr):
        name: str | None = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None:
            lowered = name.lower()
            if any(marker in lowered for marker in _STAGING_MARKERS):
                return name
    return None


class ResourceLifecycleChecker:
    name = "resource-lifecycle"
    rules = (
        Rule("TRX801", "storage backends acquired with make_backend/"
                       "open_backend must be closed on every path, "
                       "including exceptional ones (publish-or-abort)"),
        Rule("TRX802", "file/sqlite/mmap handles must be closed on every "
                       "exit (use with, try/finally, or transfer "
                       "ownership)"),
        Rule("TRX803", "staging paths must not escape a backend via "
                       "return/yield; only os.replace may publish them"),
    )

    def check(self, module: Module,
              project: "Project | None" = None) -> Iterator[Finding]:
        if project is None:
            return
        from ..flow.cfg import build_cfg
        for info in project.functions.values():
            if info.path != module.path:
                continue
            acquisitions = _acquisitions(info.node)
            if acquisitions:
                cfg = build_cfg(info.node, exception_edges=True)
                node_of = {id(node.stmt): node for node in cfg.nodes
                           if node.stmt is not None}
                for assign, var, rule in acquisitions:
                    acq_node = node_of.get(id(assign))
                    if acq_node is None:
                        continue
                    reached = cfg.reachable_without(
                        list(acq_node.succ),
                        lambda node: _discharges(node, var))
                    if (cfg.exit_normal in reached
                            or cfg.exit_exceptional in reached):
                        what = ("backend" if rule == "TRX801" else "handle")
                        yield Finding(
                            rule, module.path, assign.lineno,
                            assign.col_offset + 1,
                            f"{what} {var!r} acquired here can reach a "
                            f"function exit without close(); wrap in "
                            f"with/try-finally or transfer ownership")
            if module.in_package(*_BACKEND_SCOPE):
                yield from self._staging_escapes(module, info.node)

    def _staging_escapes(self, module: Module,
                         func: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> Iterator[Finding]:
        for node in ast.walk(func):
            expr: ast.expr | None = None
            if isinstance(node, ast.Return):
                expr = node.value
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                expr = node.value
            if expr is None:
                continue
            name = _staging_reference(expr)
            if name is not None:
                yield Finding(
                    "TRX803", module.path, node.lineno, node.col_offset + 1,
                    f"staging state {name!r} escapes the backend via "
                    f"return/yield; staged paths are published only "
                    f"through os.replace")
