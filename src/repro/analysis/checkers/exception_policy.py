"""TRX501/TRX502 — exception policy on the serving paths.

``ShardTimeoutError`` and ``RaceError`` carry control-flow meaning in
the scatter-gather and racing paths: a handler that catches
``Exception`` (or everything, with a bare ``except:``) can swallow them
and turn a deadline miss into a silently-wrong answer.  Broad handlers
are still sometimes required at outermost worker boundaries — those
sites carry an explicit ``# repro: allow[TRX501]`` with the reason.

* TRX501 — ``except Exception`` / ``except BaseException`` in
  ``repro.service`` or ``repro.shard``.
* TRX502 — bare ``except:`` anywhere in those packages (never
  acceptable; it also catches ``KeyboardInterrupt``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import terminal_attr

__all__ = ["ExceptionPolicyChecker"]

_SCOPES = ("repro.service", "repro.shard")
_BROAD = {"Exception", "BaseException"}


def _handler_names(handler: ast.ExceptHandler) -> list[tuple[str, ast.expr]]:
    if handler.type is None:
        return []
    exprs = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names: list[tuple[str, ast.expr]] = []
    for expr in exprs:
        name = terminal_attr(expr)
        if name is not None:
            names.append((name, expr))
    return names


class ExceptionPolicyChecker:
    name = "exception-policy"
    rules = (
        Rule("TRX501", "no `except Exception`/`except BaseException` in "
                       "service paths — it can swallow ShardTimeoutError/"
                       "RaceError control flow"),
        Rule("TRX502", "no bare `except:` in service paths"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    "TRX502", module.path, node.lineno, node.col_offset + 1,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; name the exceptions")
                continue
            for name, expr in _handler_names(node):
                if name in _BROAD:
                    yield Finding(
                        "TRX501", module.path, expr.lineno,
                        expr.col_offset + 1,
                        f"`except {name}` can swallow ShardTimeoutError/"
                        f"RaceError; catch specific exceptions or add an "
                        f"allow pragma with the boundary rationale")
