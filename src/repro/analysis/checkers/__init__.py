"""Pluggable checkers for the invariant lint suite.

Each module defines one checker class with a ``name``, a tuple of
:class:`~repro.analysis.core.Rule` declarations and a ``check(module)``
generator.  New checkers plug in by appending to
:func:`repro.analysis.core._build_checkers`.
"""

from __future__ import annotations

import ast

__all__ = ["terminal_attr", "attr_chain"]


def terminal_attr(node: ast.expr) -> str | None:
    """The final attribute name of an attribute chain, or the bare name.

    ``self.lock`` -> ``lock``; ``a.b.c`` -> ``c``; ``name`` -> ``name``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def attr_chain(node: ast.expr) -> list[str]:
    """The dotted parts of an attribute chain (empty for non-chains)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []
