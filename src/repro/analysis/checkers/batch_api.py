"""TRX204 — hot strategies must consume iterators block-at-a-time.

The columnar refactor gave every retrieval iterator a batch access
path — ``RplIterator.next_entries``, ``ErplIterator.take_until``,
``PostingIterator.next_chunk`` — and migrated the three strategy hot
loops (ERA, Merge, TA) onto it.  An entry-at-a-time loop reintroduced
there would silently fall back to the shim: correct results, same
simulated cost, but one Python method call per posting where the batch
path pays one per block.  TRX204 flags calls to the entry-level shims
(``next_entry()`` / ``next_position()``) inside any loop of the hot
strategy modules; deliberate exceptions carry a
``# repro: allow[TRX204]`` pragma.

The WAND module (``repro.retrieval.wand``) is held to a stricter
standard still: its document-at-a-time loop must move by *pivoting* —
``skip_to``/``leap_to`` jumps driven by the block-max bounds — so
entry-level ``advance()`` calls are banned there too.  A plain
``advance()`` inside a WAND strategy loop degrades the evaluator to a
linear DAAT scan: correct results, but every block between the current
position and the pivot gets decoded instead of leapt.

Other modules — ``ta_ra`` (the random-access TA variant kept for
ablations), ``merge`` for ``advance`` specifically (its k-way merge
legitimately advances one entry at a time between galloping phases),
tests, tools — may use those APIs freely: the shims exist precisely so
they keep working.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import terminal_attr

__all__ = ["BatchApiChecker"]

#: The strategy modules whose inner loops are wall-clock hot.
_HOT_MODULES = ("repro.retrieval.era", "repro.retrieval.merge",
                "repro.retrieval.ta", "repro.retrieval.wand")
_ENTRY_SHIMS = {"next_entry", "next_position"}
#: In the WAND module, entry-at-a-time ``advance()`` is banned as well:
#: the DAAT loop must leap via skip_to/leap_to, not crawl.
_WAND_MODULE = "repro.retrieval.wand"
_WAND_SHIMS = _ENTRY_SHIMS | {"advance"}
_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class BatchApiChecker:
    name = "batch-api"
    rules = (
        Rule("TRX204", "per-entry iterator shims (next_entry()/"
                       "next_position(), plus advance() in the WAND "
                       "module) are banned inside loops of the hot "
                       "strategy modules; use the batch API "
                       "(next_entries/take_until/next_chunk) or pivot "
                       "via skip_to/leap_to"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        if not module.in_package(*_HOT_MODULES):
            return
        shims = (_WAND_SHIMS if module.in_package(_WAND_MODULE)
                 else _ENTRY_SHIMS)
        yield from self._scan(module.tree.body, module, shims,
                              in_loop=False)

    def _scan(self, body: list[ast.stmt], module: Module,
              shims: set[str], *, in_loop: bool) -> Iterator[Finding]:
        for statement in body:
            looped = in_loop or isinstance(statement, _LOOPS)
            for node in ast.iter_child_nodes(statement):
                if isinstance(node, ast.expr):
                    yield from self._scan_expr(node, module, shims,
                                               in_loop=looped)
            for field in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field, None)
                if blocks:
                    yield from self._scan(blocks, module, shims,
                                          in_loop=looped)
            for handler in getattr(statement, "handlers", []) or []:
                yield from self._scan(handler.body, module, shims,
                                      in_loop=looped)

    def _scan_expr(self, expr: ast.expr, module: Module,
                   shims: set[str], *, in_loop: bool) -> Iterator[Finding]:
        # Inside a loop statement every call site counts; outside one,
        # only calls within comprehensions (which are loops too).
        if in_loop:
            roots: list[ast.expr] = [expr]
        else:
            roots = [node for node in ast.walk(expr)
                     if isinstance(node, _COMPREHENSIONS)]
        seen: set[tuple[int, int]] = set()
        for root in roots:
            for call in ast.walk(root):
                if not isinstance(call, ast.Call):
                    continue
                callee = terminal_attr(call.func)
                if callee not in shims:
                    continue
                site = (call.lineno, call.col_offset)
                if site in seen:  # nested comprehensions share calls
                    continue
                seen.add(site)
                if callee == "advance":
                    advice = ("per-entry advance() in a WAND strategy "
                              "loop degrades pivoting to a linear DAAT "
                              "scan; leap via skip_to/leap_to instead")
                else:
                    advice = (f"per-entry {callee}() loop on a hot "
                              f"strategy path; consume whole blocks via "
                              f"the batch API (next_entries/take_until/"
                              f"next_chunk)")
                yield Finding("TRX204", module.path, call.lineno,
                              call.col_offset + 1, advice)
