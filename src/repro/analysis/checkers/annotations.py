"""TRX701 — annotation completeness.

The strict-typing gate runs mypy ``--strict`` in CI, but mypy is not
available in every environment this repo runs in.  TRX701 is the local
floor: every function (including nested ones and ``__init__``) must
annotate its return type and every parameter except ``self``/``cls``.
``*args``/``**kwargs`` count like any other parameter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule

__all__ = ["AnnotationChecker"]

_IMPLICIT_FIRST = {"self", "cls"}


class AnnotationChecker:
    name = "annotations"
    rules = (
        Rule("TRX701", "functions must annotate their return type and all "
                       "parameters (self/cls excepted)"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.returns is None:
                yield Finding(
                    "TRX701", module.path, node.lineno, node.col_offset + 1,
                    f"function {node.name!r} is missing a return "
                    f"annotation")
            args = node.args
            positional = args.posonlyargs + args.args
            for index, arg in enumerate(positional):
                if index == 0 and arg.arg in _IMPLICIT_FIRST:
                    continue
                if arg.annotation is None:
                    yield Finding(
                        "TRX701", module.path, arg.lineno,
                        arg.col_offset + 1,
                        f"parameter {arg.arg!r} of {node.name!r} is "
                        f"missing an annotation")
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    yield Finding(
                        "TRX701", module.path, arg.lineno,
                        arg.col_offset + 1,
                        f"parameter {arg.arg!r} of {node.name!r} is "
                        f"missing an annotation")
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    yield Finding(
                        "TRX701", module.path, arg.lineno,
                        arg.col_offset + 1,
                        f"parameter {arg.arg!r} of {node.name!r} is "
                        f"missing an annotation")
