"""TRX201/TRX202 — every block decode on a query path must be charged.

The block-oriented access paths (PR 2) route all query-time block reads
through :meth:`BlockSequence.read_block` / ``find_first_block_ge`` so
the active :class:`CostModel` sees every decode.  Two escape hatches
undermine that accounting:

* ``BlockSequence.entries()`` / ``catalog.segment_entries`` /
  ``decode_block`` decode whole sequences without charging — legitimate
  for offline maintenance (index builds, persistence), a silent cost
  leak anywhere on a query path.  TRX201 flags those calls in the
  query-facing packages unless they are lexically inside a
  ``with <cost_model>.muted():`` block (the documented "deliberately
  uncharged" marker).
* Reaching into ``BlockSequence`` privates (``._payloads``,
  ``._decoded``) bypasses both charging *and* the compressed
  representation; only ``repro.storage.blocks`` itself may touch them
  (TRX202).

With the whole-program engine, TRX201 also fires *across* functions: a
query-path call into a helper that transitively performs an uncharged
decode is flagged at the call site — but only when the helper itself is
exempt from the intra rule (it lives in an owner module or outside the
query-facing packages), so each leak is reported once at the boundary
where it becomes invisible, not cascaded up every caller.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..core import Finding, Module, Rule
from . import attr_chain, terminal_attr

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..flow.project import Project

__all__ = ["CostChargingChecker"]

_SCOPES = ("repro.retrieval", "repro.index", "repro.storage")
#: Modules that own the uncharged primitives and may use them freely.
_OWNER_MODULES = ("repro.storage.blocks", "repro.storage.serialization")
_UNCHARGED_CALLS = {"entries", "segment_entries", "decode_block"}
_PRIVATE_BLOCK_ATTRS = {"_payloads", "_decoded"}

_MEMO_UNCHARGED = "cost.uncharged_functions"


def _in_packages(module_name: str, prefixes: tuple[str, ...]) -> bool:
    return any(module_name == prefix or module_name.startswith(prefix + ".")
               for prefix in prefixes)


def _is_muted_with(statement: ast.With | ast.AsyncWith) -> bool:
    for item in statement.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "muted"):
            return True
    return False


class CostChargingChecker:
    name = "cost-charging"
    rules = (
        Rule("TRX201", "uncharged block decodes (entries()/segment_entries/"
                       "decode_block), direct or through an exempt helper, "
                       "are banned on query paths unless inside a "
                       "CostModel.muted() scope"),
        Rule("TRX202", "BlockSequence private internals (_payloads/_decoded) "
                       "may only be touched by repro.storage.blocks"),
    )

    def check(self, module: Module,
              project: "Project | None" = None) -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        owner = module.in_package(*_OWNER_MODULES)
        yield from self._walk(module, module.tree.body, muted=False,
                              owner=owner)
        if project is not None and not owner:
            yield from self._interprocedural(module, project)

    def _walk(self, module: Module, body: list[ast.stmt], *,
              muted: bool, owner: bool) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                inner_muted = muted or _is_muted_with(statement)
                for item in statement.items:
                    yield from self._scan_expr(module, item.context_expr,
                                               muted=muted, owner=owner)
                yield from self._walk(module, statement.body,
                                      muted=inner_muted, owner=owner)
                continue
            for node in ast.iter_child_nodes(statement):
                if isinstance(node, ast.expr):
                    yield from self._scan_expr(module, node,
                                               muted=muted, owner=owner)
            for field in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field, None)
                if blocks:
                    yield from self._walk(module, blocks,
                                          muted=muted, owner=owner)
            for handler in getattr(statement, "handlers", []) or []:
                yield from self._walk(module, handler.body,
                                      muted=muted, owner=owner)

    def _scan_expr(self, module: Module, expr: ast.expr, *,
                   muted: bool, owner: bool) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and not muted and not owner:
                callee = terminal_attr(node.func)
                if callee in _UNCHARGED_CALLS:
                    yield Finding(
                        "TRX201", module.path, node.lineno,
                        node.col_offset + 1,
                        f"uncharged block decode via {callee}(); route "
                        f"through read_block()/find_first_block_ge() or "
                        f"wrap in a CostModel.muted() scope")
            if isinstance(node, ast.Attribute) and not owner:
                if node.attr in _PRIVATE_BLOCK_ATTRS:
                    chain = attr_chain(node)
                    # Only flag access through another object
                    # (x._payloads), not a module's own self attribute
                    # named identically — self access outside blocks.py
                    # would be a different class's private anyway, but
                    # keep the rule honest and flag those too.
                    if len(chain) >= 2:
                        yield Finding(
                            "TRX202", module.path, node.lineno,
                            node.col_offset + 1,
                            f"access to BlockSequence private "
                            f"{node.attr!r} outside repro.storage.blocks")

    # ------------------------------------------------------------------
    # Cross-function leaks through intra-exempt helpers
    # ------------------------------------------------------------------
    def _interprocedural(self, module: Module,
                         project: "Project") -> Iterator[Finding]:
        uncharged = project.memo.get(_MEMO_UNCHARGED)
        if uncharged is None:
            from ..flow.summaries import uncharged_functions
            uncharged = uncharged_functions(project)
            project.memo[_MEMO_UNCHARGED] = uncharged
        assert isinstance(uncharged, set)
        emitted: set[tuple[int, int]] = set()
        for site in project.call_sites:
            if site.path != module.path or site.muted or site.fallback:
                continue
            if site.callee_name in _UNCHARGED_CALLS:
                continue  # the intra rule already covers direct calls
            for candidate in site.candidates:
                if candidate not in uncharged:
                    continue
                if not self._intra_exempt(project, candidate):
                    continue  # the callee is flagged directly; no cascade
                mark = (site.line, site.col)
                if mark in emitted:
                    break
                emitted.add(mark)
                short = candidate.rsplit(".", 1)[-1]
                yield Finding(
                    "TRX201", module.path, site.line, site.col + 1,
                    f"call to {short}() performs an uncharged block "
                    f"decode transitively; charge via read_block()/"
                    f"find_first_block_ge() or wrap the call in a "
                    f"CostModel.muted() scope")
                break

    @staticmethod
    def _intra_exempt(project: "Project", qualname: str) -> bool:
        """Would the intra rule stay silent inside *qualname*?"""
        info = project.functions.get(qualname)
        if info is None:
            return False
        return (_in_packages(info.module, _OWNER_MODULES)
                or not _in_packages(info.module, _SCOPES))
