"""TRX201/TRX202 — every block decode on a query path must be charged.

The block-oriented access paths (PR 2) route all query-time block reads
through :meth:`BlockSequence.read_block` / ``find_first_block_ge`` so
the active :class:`CostModel` sees every decode.  Two escape hatches
undermine that accounting:

* ``BlockSequence.entries()`` / ``catalog.segment_entries`` /
  ``decode_block`` decode whole sequences without charging — legitimate
  for offline maintenance (index builds, persistence), a silent cost
  leak anywhere on a query path.  TRX201 flags those calls in the
  query-facing packages unless they are lexically inside a
  ``with <cost_model>.muted():`` block (the documented "deliberately
  uncharged" marker).
* Reaching into ``BlockSequence`` privates (``._payloads``,
  ``._decoded``) bypasses both charging *and* the compressed
  representation; only ``repro.storage.blocks`` itself may touch them
  (TRX202).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import attr_chain, terminal_attr

__all__ = ["CostChargingChecker"]

_SCOPES = ("repro.retrieval", "repro.index", "repro.storage")
#: Modules that own the uncharged primitives and may use them freely.
_OWNER_MODULES = ("repro.storage.blocks", "repro.storage.serialization")
_UNCHARGED_CALLS = {"entries", "segment_entries", "decode_block"}
_PRIVATE_BLOCK_ATTRS = {"_payloads", "_decoded"}


def _is_muted_with(statement: ast.With | ast.AsyncWith) -> bool:
    for item in statement.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "muted"):
            return True
    return False


class CostChargingChecker:
    name = "cost-charging"
    rules = (
        Rule("TRX201", "uncharged block decodes (entries()/segment_entries/"
                       "decode_block) are banned on query paths unless "
                       "inside a CostModel.muted() scope"),
        Rule("TRX202", "BlockSequence private internals (_payloads/_decoded) "
                       "may only be touched by repro.storage.blocks"),
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        owner = module.in_package(*_OWNER_MODULES)
        yield from self._walk(module, module.tree.body, muted=False,
                              owner=owner)

    def _walk(self, module: Module, body: list[ast.stmt], *,
              muted: bool, owner: bool) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                inner_muted = muted or _is_muted_with(statement)
                for item in statement.items:
                    yield from self._scan_expr(module, item.context_expr,
                                               muted=muted, owner=owner)
                yield from self._walk(module, statement.body,
                                      muted=inner_muted, owner=owner)
                continue
            for node in ast.iter_child_nodes(statement):
                if isinstance(node, ast.expr):
                    yield from self._scan_expr(module, node,
                                               muted=muted, owner=owner)
            for field in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field, None)
                if blocks:
                    yield from self._walk(module, blocks,
                                          muted=muted, owner=owner)
            for handler in getattr(statement, "handlers", []) or []:
                yield from self._walk(module, handler.body,
                                      muted=muted, owner=owner)

    def _scan_expr(self, module: Module, expr: ast.expr, *,
                   muted: bool, owner: bool) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and not muted and not owner:
                callee = terminal_attr(node.func)
                if callee in _UNCHARGED_CALLS:
                    yield Finding(
                        "TRX201", module.path, node.lineno,
                        node.col_offset + 1,
                        f"uncharged block decode via {callee}(); route "
                        f"through read_block()/find_first_block_ge() or "
                        f"wrap in a CostModel.muted() scope")
            if isinstance(node, ast.Attribute) and not owner:
                if node.attr in _PRIVATE_BLOCK_ATTRS:
                    chain = attr_chain(node)
                    # Only flag access through another object
                    # (x._payloads), not a module's own self attribute
                    # named identically — self access outside blocks.py
                    # would be a different class's private anyway, but
                    # keep the rule honest and flag those too.
                    if len(chain) >= 2:
                        yield Finding(
                            "TRX202", module.path, node.lineno,
                            node.col_offset + 1,
                            f"access to BlockSequence private "
                            f"{node.attr!r} outside repro.storage.blocks")
