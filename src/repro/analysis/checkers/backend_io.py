"""TRX205 — index-store I/O goes through ``repro.backend``.

The storage-backend subsystem owns every byte that reaches an index
store: atomic staged writes, corruption wrapping, codec tags and cost
charging all live behind :class:`~repro.backend.base.StorageBackend`.
A direct ``open()`` or ``sqlite3.connect()`` on an index artifact —
a ``.blk`` / ``.sqlite`` / ``.mmap`` file or a ``segments.tsv``
manifest — bypasses all four, so saved catalogs stop being
byte-interchangeable across backends and crash-atomicity silently
disappears.

TRX205 flags such calls outside ``repro.backend`` itself.  The rule is
textual by necessity (it looks for index-artifact markers in the call's
literal arguments and in nearby f-string pieces), so path-building
helpers that merely *name* an index file stay clean; only handing the
name to ``open``/``sqlite3.connect``/``mmap.mmap`` trips it.  Corpus
and run files (``.xml``, ``.tbl``, workload TSVs) are out of scope.
A deliberate exception carries ``# repro: allow[TRX205]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import attr_chain

__all__ = ["BackendIoChecker"]

#: Substrings that mark a string literal as an index-store artifact.
_INDEX_MARKERS = (".blk", "catalog.sqlite", "catalog.mmap", "segments.tsv")

#: Call targets that reach the filesystem / database layer directly.
_IO_CALLS = (
    ["open"],
    ["io", "open"],
    ["os", "open"],
    ["sqlite3", "connect"],
    ["mmap", "mmap"],
)

#: Packages allowed to touch stores directly: the backend subsystem is
#: the abstraction itself.
_EXEMPT = ("repro.backend",)


def _literal_strings(node: ast.expr) -> Iterator[str]:
    """Every string literal reachable inside one call argument."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child.value


class BackendIoChecker:
    name = "backend_io"
    rules = (
        Rule("TRX205", "direct open()/sqlite3.connect()/mmap on index-store "
                       "paths outside repro.backend"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        if not module.in_package("repro") or module.in_package(*_EXEMPT):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain not in _IO_CALLS:
                continue
            marker = self._index_marker(node)
            if marker is None:
                continue
            target = ".".join(chain)
            yield Finding(
                "TRX205", module.path, node.lineno, node.col_offset + 1,
                f"{target}() on an index-store path ({marker!r}); store "
                f"access must go through repro.backend (make_backend/"
                f"open_backend) so staged writes, corruption wrapping and "
                f"codec tags apply")

    def _index_marker(self, call: ast.Call) -> str | None:
        """The index-artifact marker named in the call's arguments."""
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for text in _literal_strings(argument):
                for marker in _INDEX_MARKERS:
                    if marker in text:
                        return marker
        return None
