"""TRX401/TRX402 — telemetry keys come from the central registry.

Dashboards and the autopilot read counters by name; a typo in an
``incr("search.requets")`` call silently creates a parallel counter and
the real one flatlines.  The fix is one source of truth:
:mod:`repro.service.registry` declares every counter, histogram and
gauge name (plus the dynamic prefixes like ``search.method.``).

* TRX401 — a literal key passed to ``incr``/``observe``/
  ``register_gauge`` that is not in the registry (and matches no
  registered prefix).
* TRX402 — a *non*-literal key (f-strings must start with a registered
  prefix; arbitrary expressions defeat static checking entirely).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule
from . import terminal_attr
from ...service import registry

__all__ = ["StatsRegistryChecker"]

_SCOPES = ("repro.service", "repro.shard")
#: The registry itself and the Telemetry implementation are exempt —
#: they define/handle the keys rather than emit them.
_EXEMPT_MODULES = ("repro.service.registry", "repro.service.telemetry")

_KIND_BY_METHOD = {
    "incr": "counter",
    "observe": "histogram",
    "register_gauge": "gauge",
}
_CHECKS = {
    "counter": (registry.is_registered_counter, "counter"),
    "histogram": (registry.is_registered_histogram, "histogram"),
    "gauge": (registry.is_registered_gauge, "gauge"),
}
_PREFIXES = {
    "counter": registry.COUNTER_PREFIXES,
    "histogram": registry.HISTOGRAM_PREFIXES,
    "gauge": (),
}


class StatsRegistryChecker:
    name = "stats-registry"
    rules = (
        Rule("TRX401", "telemetry keys must be declared in "
                       "repro.service.registry"),
        Rule("TRX402", "telemetry keys must be string literals (or "
                       "f-strings on a registered prefix)"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        if not module.in_package(*_SCOPES):
            return
        if module.in_package(*_EXEMPT_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            method = terminal_attr(node.func)
            kind = _KIND_BY_METHOD.get(method or "")
            if kind is None or not node.args:
                continue
            # Only telemetry-shaped receivers: x.incr(...), not a local
            # function incr(...).
            if not isinstance(node.func, ast.Attribute):
                continue
            yield from self._check_key(module, node.args[0], kind)

    def _check_key(self, module: Module, key: ast.expr,
                   kind: str) -> Iterator[Finding]:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            is_registered, label = _CHECKS[kind]
            if not is_registered(key.value):
                yield Finding(
                    "TRX401", module.path, key.lineno, key.col_offset + 1,
                    f"{label} key {key.value!r} is not declared in "
                    f"repro.service.registry")
            return
        if isinstance(key, ast.JoinedStr):
            prefix = ""
            if key.values and isinstance(key.values[0], ast.Constant):
                prefix = str(key.values[0].value)
            allowed = _PREFIXES[kind]
            if prefix and any(prefix.startswith(registered)
                              or registered.startswith(prefix)
                              for registered in allowed):
                return
            yield Finding(
                "TRX402", module.path, key.lineno, key.col_offset + 1,
                f"dynamic {kind} key does not start with a registered "
                f"prefix ({', '.join(allowed) or 'none declared'})")
            return
        yield Finding(
            "TRX402", module.path, key.lineno, key.col_offset + 1,
            f"{kind} key must be a string literal from "
            f"repro.service.registry, not a computed expression")
