"""TRX901/TRX902/TRX903 — protocol conformance across the call graph.

Three replication/serving protocols are load-bearing enough to machine-
check:

* **TRX901 — closed-union dispatch exhaustiveness.**  A module-level
  ``X = Union[A, B, C]`` whose members are all classes of that module
  is a *closed union* (the replication wire protocol's
  ``ReplicationRecord`` is the motivating case).  Any function that
  isinstance-dispatches over two or more members must handle **all**
  of them — adding a record type then fails analysis at every
  dispatch site that was not updated, instead of silently no-op'ing on
  followers.
* **TRX902 — write-side reachability.**  Every call to a
  ``@mutates_engine_state`` method must come from a write-side context:
  lexically under a plain mutex / RW ``write()`` scope, inside a
  constructor or another decorated mutator, or inside a ``*_locked``
  function whose own callers are checked transitively (the
  interprocedural engine's upward propagation).  A call under a read
  lock, or from a plain function with no lock at all, is flagged.
* **TRX903 — telemetry on every exit of serving handlers.**  Functions
  marked ``@serving_handler`` must emit telemetry (directly or through
  a callee that transitively does) before **every** return and explicit
  raise — the classic miss being an early guard-clause raise that
  leaves a request invisible to ``/stats``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..core import Finding, Module, Rule

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..flow.project import ClassInfo, Project

__all__ = ["ProtocolChecker"]

_WRITE_SCOPES = ("repro.service", "repro.shard", "repro.replica")
_HANDLER_DECORATOR = "serving_handler"

#: Memo keys on Project.memo.
_MEMO_UNIONS = "protocol.unions"
_MEMO_WRITE_VIOLATIONS = "protocol.write_violations"
_MEMO_EMITTERS = "protocol.emitters"


def _closed_unions(project: "Project") -> dict[str, frozenset[str]]:
    """``union name -> member class qualnames`` for closed unions."""
    unions: dict[str, frozenset[str]] = {}
    for module in project.modules:
        for statement in module.tree.body:
            if (not isinstance(statement, ast.Assign)
                    or len(statement.targets) != 1
                    or not isinstance(statement.targets[0], ast.Name)):
                continue
            member_names = _union_member_names(statement.value)
            if member_names is None or len(member_names) < 2:
                continue
            members: list[str] = []
            for name in member_names:
                info = project.resolve_class(module.module, name)
                if info is None or info.module != module.module:
                    break
                members.append(info.qualname)
            else:
                union_name = statement.targets[0].id
                unions[f"{module.module}.{union_name}"] = frozenset(members)
    return unions


def _union_member_names(expr: ast.expr) -> list[str] | None:
    """Member names of a ``Union[...]`` / ``A | B`` type alias."""
    if (isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "Union"):
        inner = expr.slice
        elements = (list(inner.elts) if isinstance(inner, ast.Tuple)
                    else [inner])
        names = [element.id for element in elements
                 if isinstance(element, ast.Name)]
        return names if len(names) == len(elements) else None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        left = _union_member_names(expr.left)
        right = _union_member_names(expr.right)
        if left is None and isinstance(expr.left, ast.Name):
            left = [expr.left.id]
        if right is None and isinstance(expr.right, ast.Name):
            right = [expr.right.id]
        if left is None or right is None:
            return None
        return left + right
    return None


def _isinstance_tests(func: ast.FunctionDef | ast.AsyncFunctionDef
                      ) -> dict[str, list[tuple[str, int]]]:
    """``tested variable -> [(class name, line)]`` isinstance calls."""
    tests: dict[str, list[tuple[str, int]]] = {}
    for node in ast.walk(func):
        if (not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Name)
                or node.func.id != "isinstance"
                or len(node.args) != 2
                or not isinstance(node.args[0], ast.Name)):
            continue
        subject = node.args[0].id
        klass = node.args[1]
        candidates = (list(klass.elts) if isinstance(klass, ast.Tuple)
                      else [klass])
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                tests.setdefault(subject, []).append(
                    (candidate.id, node.lineno))
    return tests


class ProtocolChecker:
    name = "protocol-conformance"
    rules = (
        Rule("TRX901", "isinstance dispatch over a closed union (e.g. "
                       "ReplicationRecord) must handle every member type"),
        Rule("TRX902", "@mutates_engine_state methods may only be reached "
                       "from write-side contexts (write lock, constructor, "
                       "mutator, or checked *_locked chain)"),
        Rule("TRX903", "@serving_handler functions must emit telemetry on "
                       "every return and raise"),
    )

    def check(self, module: Module,
              project: "Project | None" = None) -> Iterator[Finding]:
        if project is None:
            return
        yield from self._union_dispatch(module, project)
        yield from self._write_side(module, project)
        yield from self._handler_exits(module, project)

    # -- TRX901 --------------------------------------------------------
    def _union_dispatch(self, module: Module,
                        project: "Project") -> Iterator[Finding]:
        unions = project.memo.get(_MEMO_UNIONS)
        if unions is None:
            unions = _closed_unions(project)
            project.memo[_MEMO_UNIONS] = unions
        if not unions:
            return
        member_sets = list(unions.items())
        for info in project.functions.values():
            if info.path != module.path:
                continue
            for subject, tested in _isinstance_tests(info.node).items():
                resolved: dict[str, int] = {}
                for name, line in tested:
                    klass = project.resolve_class(info.module, name)
                    if klass is not None:
                        resolved.setdefault(klass.qualname, line)
                for union_name, members in member_sets:
                    covered = set(resolved) & members
                    if len(covered) < 2 or covered == members:
                        continue
                    missing = sorted(name.rsplit(".", 1)[-1]
                                     for name in members - covered)
                    line = min(resolved[name] for name in covered)
                    yield Finding(
                        "TRX901", module.path, line, 1,
                        f"isinstance dispatch on {subject!r} covers "
                        f"{len(covered)}/{len(members)} members of "
                        f"{union_name.rsplit('.', 1)[-1]}; missing: "
                        f"{', '.join(missing)}")

    # -- TRX902 --------------------------------------------------------
    def _write_side(self, module: Module,
                    project: "Project") -> Iterator[Finding]:
        if not module.in_package(*_WRITE_SCOPES):
            return
        violations = project.memo.get(_MEMO_WRITE_VIOLATIONS)
        if violations is None:
            from ..flow.summaries import write_context_violations
            violations = write_context_violations(project)
            project.memo[_MEMO_WRITE_VIOLATIONS] = violations
        for violation in violations:
            if violation.site.path != module.path:
                continue
            target = violation.target.rsplit(".", 2)
            short = ".".join(target[-2:])
            if violation.read_side:
                detail = ("under the read side of an RW lock; mutators "
                          "need the writer side")
            else:
                detail = ("from a context holding no lock; take the "
                          "write lock or mark the caller *_locked")
            yield Finding(
                "TRX902", violation.site.path, violation.site.line,
                violation.site.col + 1,
                f"call to @mutates_engine_state {short}() {detail}")

    # -- TRX903 --------------------------------------------------------
    def _handler_exits(self, module: Module,
                       project: "Project") -> Iterator[Finding]:
        emitters = project.memo.get(_MEMO_EMITTERS)
        if emitters is None:
            from ..flow.summaries import telemetry_emitters
            emitters = telemetry_emitters(project)
            project.memo[_MEMO_EMITTERS] = emitters
        from ..flow.cfg import build_cfg
        from ..flow.summaries import _emits_directly
        for info in project.functions.values():
            if info.path != module.path:
                continue
            if not info.decorated_with(_HANDLER_DECORATOR):
                continue
            class_info: "ClassInfo | None" = (
                project.classes.get(info.class_qualname)
                if info.class_qualname else None)

            def emits(stmt: ast.AST) -> bool:
                if _emits_directly(stmt):
                    return True
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    candidates, fallback, _ = project.resolve_call(
                        module, class_info, node.func)
                    if not fallback and any(candidate in emitters
                                            for candidate in candidates):
                        return True
                return False

            cfg = build_cfg(info.node, exception_edges=False)
            reached = cfg.reachable_without(
                [cfg.entry],
                lambda node: node.stmt is not None and emits(node.stmt),
                exceptional=False)
            flagged: set[int] = set()
            for node in cfg.nodes:
                if node.kind not in ("return", "raise"):
                    continue
                if node not in reached or node.stmt is None:
                    continue
                stmt = node.stmt
                assert isinstance(stmt, ast.stmt)
                if stmt.lineno in flagged:
                    continue
                flagged.add(stmt.lineno)
                exit_kind = ("return" if node.kind == "return"
                             else "raise")
                yield Finding(
                    "TRX903", module.path, stmt.lineno,
                    stmt.col_offset + 1,
                    f"serving handler {info.name}() can {exit_kind} here "
                    f"without emitting telemetry")
            if cfg.exit_normal in reached and any(
                    pred.kind != "return" and pred in reached
                    for pred in cfg.exit_normal.pred):
                yield Finding(
                    "TRX903", module.path, info.node.lineno,
                    info.node.col_offset + 1,
                    f"serving handler {info.name}() can fall off the end "
                    f"without emitting telemetry")
