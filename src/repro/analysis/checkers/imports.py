"""TRX601 — unused imports.

A pure-stdlib stand-in for ruff's F401 so the local gate (where ruff is
not installed) still catches dead imports.  An imported name counts as
used when it appears as a loaded ``Name``/attribute root anywhere in
the module, is re-exported via ``__all__``, or occurs as a token inside
a string constant (docstring references, ``typing`` forward
references).  ``from x import *`` and ``__future__`` imports are
skipped.

The helpers are shared with the ``--fix`` autofixer
(:mod:`repro.analysis.flow.fixer`), which re-derives unused bindings
with exactly this logic so that fix → re-analyze is a fixed point.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, Module, Rule

__all__ = ["UnusedImportChecker", "bound_aliases", "local_name",
           "used_names", "exported_names", "string_tokens"]


def bound_aliases(tree: ast.Module) -> list[
        tuple[ast.Import | ast.ImportFrom, list[ast.alias]]]:
    """Each import statement with its name-binding aliases."""
    statements: list[tuple[ast.Import | ast.ImportFrom, list[ast.alias]]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            statements.append((node, list(node.names)))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            aliases = [alias for alias in node.names if alias.name != "*"]
            if aliases:
                statements.append((node, aliases))
    return statements


def local_name(node: ast.Import | ast.ImportFrom, alias: ast.alias) -> str:
    """The name *alias* binds in the module namespace."""
    if alias.asname:
        return alias.asname
    if isinstance(node, ast.Import):
        return alias.name.split(".")[0]
    return alias.name


def used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root: ast.expr = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def exported_names(tree: ast.Module) -> set[str]:
    exported: set[str] = set()
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))):
            for element in node.value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    exported.add(element.value)
    return exported


def string_tokens(tree: ast.Module) -> set[str]:
    tokens: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
    return tokens


class UnusedImportChecker:
    name = "unused-imports"
    rules = (
        Rule("TRX601", "imported names must be used, re-exported via "
                       "__all__, or referenced in annotations"),
    )

    def check(self, module: Module,
              project: object | None = None) -> Iterator[Finding]:
        used = used_names(module.tree)
        exported = exported_names(module.tree)
        tokens = string_tokens(module.tree)
        for node, aliases in bound_aliases(module.tree):
            for alias in aliases:
                local = local_name(node, alias)
                if local in used or local in exported or local in tokens:
                    continue
                yield Finding(
                    "TRX601", module.path, node.lineno, node.col_offset + 1,
                    f"{alias.name!r} imported as {local!r} but never used")
