"""TRX601 — unused imports.

A pure-stdlib stand-in for ruff's F401 so the local gate (where ruff is
not installed) still catches dead imports.  An imported name counts as
used when it appears as a loaded ``Name``/attribute root anywhere in
the module, is re-exported via ``__all__``, or occurs as a token inside
a string constant (docstring references, ``typing`` forward
references).  ``from x import *`` and ``__future__`` imports are
skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, Module, Rule

__all__ = ["UnusedImportChecker"]


def _bound_names(tree: ast.Module) -> list[tuple[str, int, int, str]]:
    """``(local name, line, col, imported thing)`` per import binding."""
    bound: list[tuple[str, int, int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                bound.append((local, node.lineno, node.col_offset + 1,
                              alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bound.append((local, node.lineno, node.col_offset + 1,
                              alias.name))
    return bound


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def _exported_names(tree: ast.Module) -> set[str]:
    exported: set[str] = set()
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))):
            for element in node.value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    exported.add(element.value)
    return exported


def _string_tokens(tree: ast.Module) -> set[str]:
    tokens: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
    return tokens


class UnusedImportChecker:
    name = "unused-imports"
    rules = (
        Rule("TRX601", "imported names must be used, re-exported via "
                       "__all__, or referenced in annotations"),
    )

    def check(self, module: Module) -> Iterator[Finding]:
        used = _used_names(module.tree)
        exported = _exported_names(module.tree)
        tokens = _string_tokens(module.tree)
        for local, line, col, imported in _bound_names(module.tree):
            if local in used or local in exported or local in tokens:
                continue
            yield Finding(
                "TRX601", module.path, line, col,
                f"{imported!r} imported as {local!r} but never used")
