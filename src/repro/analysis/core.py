"""Driver, file model and allowlist mechanics for the lint suite.

A :class:`Module` wraps one parsed source file together with its
*pragma allowlist*: ``# repro: allow[TRX101]`` (optionally with a
trailing reason) suppresses that rule on the commented line and on the
line directly below it, and ``# repro: allow-file[TRX301]`` near the
top of a file waives the rule for the whole module.  Fixture files can
override their inferred module identity with
``# repro: module[repro.service.something]`` so rule scoping can be
exercised from any path.

Checkers are plain objects with a ``rules`` tuple and a ``check``
generator; :data:`CHECKERS` is the pluggable registry the CLI and the
tests iterate.  ``check`` receives the whole-program
:class:`~repro.analysis.flow.project.Project` alongside the module
(``None`` when interprocedural analysis is disabled), so rules can
range from purely lexical to call-graph-wide.

The driver has two layers: :func:`analyze_modules` runs the checkers
over already-built modules (the incremental cache uses it to re-check
only stale files against a fresh project), and :func:`run_analysis`
is the read-from-disk convenience wrapper.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, Sequence

from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .flow.project import Project

__all__ = ["Finding", "Module", "Rule", "Checker", "CHECKERS", "RULES",
           "run_analysis", "analyze_modules", "make_module", "iter_sources"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")
_ALLOW_FILE_RE = re.compile(r"#\s*repro:\s*allow-file\[([A-Z0-9,\s]+)\]")
_MODULE_RE = re.compile(r"#\s*repro:\s*module\[([\w.]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """Identity and one-line invariant statement of a lint rule."""

    rule_id: str
    summary: str


class Module:
    """One parsed source file plus its pragma allowlist."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
        self.lines = source.splitlines()
        #: line number -> rule ids allowed on that line.
        self.allowed: dict[int, frozenset[str]] = {}
        self.allowed_file: frozenset[str] = frozenset()
        module_override: str | None = None
        file_rules: set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(text)
            if match:
                rules = frozenset(part.strip()
                                  for part in match.group(1).split(","))
                self.allowed[lineno] = rules
                # A pragma on its own line covers the statement below it.
                self.allowed[lineno + 1] = (
                    self.allowed.get(lineno + 1, frozenset()) | rules)
            match = _ALLOW_FILE_RE.search(text)
            if match:
                file_rules.update(part.strip()
                                  for part in match.group(1).split(","))
            match = _MODULE_RE.search(text)
            if match:
                module_override = match.group(1)
        self.allowed_file = frozenset(file_rules)
        self.module = (module_override if module_override is not None
                       else _infer_module(path))

    def is_allowed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.allowed_file:
            return True
        return rule_id in self.allowed.get(line, frozenset())

    def in_package(self, *prefixes: str) -> bool:
        """Does this module live under any of the dotted *prefixes*?"""
        return any(self.module == prefix or self.module.startswith(prefix + ".")
                   for prefix in prefixes)


def _infer_module(path: str) -> str:
    parts = Path(path).with_suffix("").parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            dotted = list(parts[index:])
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return Path(path).stem


def make_module(path: str | Path, source: str | None = None) -> Module:
    """Build a :class:`Module`, reading *path* when *source* is omitted."""
    if source is None:
        source = Path(path).read_text()
    return Module(str(path), source)


class Checker(Protocol):
    """The pluggable checker interface."""

    name: str
    rules: tuple[Rule, ...]

    def check(self, module: Module,
              project: "Project | None" = None) -> Iterator[Finding]:
        """Yield findings for *module* (allowlist filtering is the
        driver's job).  *project* carries whole-program context, or is
        ``None`` for intraprocedural-only runs."""
        ...  # pragma: no cover - protocol body


def _build_checkers() -> tuple[Checker, ...]:
    from .checkers.annotations import AnnotationChecker
    from .checkers.backend_io import BackendIoChecker
    from .checkers.batch_api import BatchApiChecker
    from .checkers.cost_charging import CostChargingChecker
    from .checkers.determinism import DeterminismChecker
    from .checkers.exception_policy import ExceptionPolicyChecker
    from .checkers.imports import UnusedImportChecker
    from .checkers.lock_discipline import LockDisciplineChecker
    from .checkers.protocol import ProtocolChecker
    from .checkers.resource_lifecycle import ResourceLifecycleChecker
    from .checkers.stats_registry import StatsRegistryChecker

    return (
        LockDisciplineChecker(),
        CostChargingChecker(),
        BatchApiChecker(),
        BackendIoChecker(),
        DeterminismChecker(),
        StatsRegistryChecker(),
        ExceptionPolicyChecker(),
        UnusedImportChecker(),
        AnnotationChecker(),
        ResourceLifecycleChecker(),
        ProtocolChecker(),
    )


CHECKERS: tuple[Checker, ...] = _build_checkers()

#: Every rule the suite knows, keyed by id.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for checker in CHECKERS
    for rule in checker.rules
}


def iter_sources(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under *paths* (files given directly included)."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {raw}")
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _validate_select(select: Sequence[str] | None) -> None:
    if not select:
        return
    unknown = [entry for entry in select
               if not any(rule_id.startswith(entry) for rule_id in RULES)]
    if unknown:
        raise AnalysisError(f"unknown rule selector(s): {', '.join(unknown)}")


def analyze_modules(modules: Sequence[Module], *,
                    select: Sequence[str] | None = None,
                    interprocedural: bool = True,
                    restrict_paths: set[str] | None = None,
                    project: "Project | None" = None) -> list[Finding]:
    """Run every (or the *select*-ed) rule over prebuilt *modules*.

    The whole-program :class:`Project` is built over **all** modules
    (or taken from *project* when the caller prebuilt one), while
    *restrict_paths* limits which modules are actually checked — the
    incremental cache passes the full module set for context but only
    re-checks the stale files.
    """
    _validate_select(select)

    def selected(rule_id: str) -> bool:
        if not select:
            return True
        return any(rule_id.startswith(entry) for entry in select)

    if interprocedural and project is None and modules:
        from .flow.project import Project
        project = Project(list(modules))
    if not interprocedural:
        project = None

    findings: list[Finding] = []
    for module in modules:
        if restrict_paths is not None and module.path not in restrict_paths:
            continue
        for checker in CHECKERS:
            if not any(selected(rule.rule_id) for rule in checker.rules):
                continue
            for finding in checker.check(module, project):
                if not selected(finding.rule):
                    continue
                if module.is_allowed(finding.rule, finding.line):
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def run_analysis(paths: Sequence[str], *,
                 select: Sequence[str] | None = None,
                 interprocedural: bool = True) -> list[Finding]:
    """Run the suite over *paths* read from disk; sorted findings.

    ``select`` entries may be full rule ids (``TRX101``) or family
    prefixes (``TRX1``).
    """
    modules = [make_module(source_path) for source_path in iter_sources(paths)]
    return analyze_modules(modules, select=select,
                           interprocedural=interprocedural)
