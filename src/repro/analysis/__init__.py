"""repro.analysis — the project-specific static-analysis gate.

An AST-based invariant lint suite encoding the rules that keep the
reproduction honest: lock discipline in the serving layer, cost
charging on every block-decode path, determinism in golden-path
modules, a central telemetry-key registry, exception policy in service
paths, plus unused-import and annotation-completeness hygiene.

Run it as ``python -m repro.analysis src/repro`` (or ``repro analyze``);
the exit status is the CI gate.  Rules are documented in
``docs/analysis.md``; individual findings can be waived with a
``# repro: allow[TRX###] reason`` comment on (or just above) the
offending line.
"""

from .core import Finding, Module, RULES, run_analysis

__all__ = ["Finding", "Module", "RULES", "run_analysis"]
