"""CLI for the invariant lint suite: ``python -m repro.analysis``.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule selector, unreadable path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ..errors import AnalysisError
from .core import RULES, run_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific invariant lint suite (see docs/analysis.md)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids or prefixes "
                             "(e.g. TRX101,TRX3)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        dest="output_format", help="output format")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].summary}")
        return 0
    select = ([part.strip() for part in args.select.split(",") if part.strip()]
              if args.select else None)
    try:
        findings = run_analysis(args.paths, select=select)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(json.dumps([finding.__dict__ for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        count = len(findings)
        print(f"{count} finding{'s' if count != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
