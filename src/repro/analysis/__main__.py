"""CLI for the invariant lint suite: ``python -m repro.analysis``.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule selector, unreadable path).

Beyond the plain run, the driver fronts the whole-program machinery:
``--cache`` routes through the incremental result cache (warm runs that
hash-match every file skip parsing entirely), ``--format sarif`` emits
SARIF 2.1.0 for GitHub code scanning, ``--baseline``/
``--write-baseline`` apply and record the committed suppression file,
``--fix`` rewrites unused imports (TRX601) in place, and
``--no-interprocedural`` restricts every rule to its single-function
form (the pre-flow-engine behaviour, kept for comparison runs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from ..errors import AnalysisError
from .core import Finding, RULES, iter_sources, make_module, run_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific invariant lint suite (see docs/analysis.md)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids or prefixes "
                             "(e.g. TRX101,TRX3)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="output format")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    parser.add_argument("--no-interprocedural", action="store_true",
                        help="disable the whole-program flow engine "
                             "(single-function rules only)")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="incremental result cache file; warm runs "
                             "whose sources all hash-match skip analysis")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="filter findings recorded in this baseline "
                             "file (new findings still fail)")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="record the current findings as the "
                             "baseline and exit 0")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite unused imports (TRX601) in place, "
                             "then report what remains")
    return parser


def _apply_fixes(paths: Sequence[str]) -> list[str]:
    """Rewrite TRX601 findings in place; the modified file paths."""
    from .flow.fixer import fix_unused_imports
    fixed: list[str] = []
    for source_path in iter_sources(paths):
        module = make_module(source_path)
        result = fix_unused_imports(module)
        if result.changed:
            Path(source_path).write_text(result.source, encoding="utf-8")
            fixed.append(str(source_path))
    return fixed


def _emit(findings: list[Finding], output_format: str) -> None:
    if output_format == "sarif":
        from .flow.sarif import render_sarif
        print(render_sarif(findings))
    elif output_format == "json":
        print(json.dumps([finding.__dict__ for finding in findings],
                         indent=2))
    else:
        for finding in findings:
            print(finding.render())
        count = len(findings)
        print(f"{count} finding{'s' if count != 1 else ''}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].summary}")
        return 0
    select = ([part.strip() for part in args.select.split(",") if part.strip()]
              if args.select else None)
    interprocedural = not args.no_interprocedural
    try:
        fixed: list[str] = []
        if args.fix:
            fixed = _apply_fixes(args.paths)
        if args.cache:
            from .flow.cache import analyze_with_cache
            findings = analyze_with_cache(
                args.paths, cache_path=args.cache, select=select,
                interprocedural=interprocedural).findings
        else:
            findings = run_analysis(args.paths, select=select,
                                    interprocedural=interprocedural)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        from .flow.baseline import write_baseline
        count = write_baseline(args.write_baseline, findings)
        print(f"baseline: recorded {count} finding"
              f"{'s' if count != 1 else ''} in {args.write_baseline}")
        return 0
    if args.baseline:
        from .flow.baseline import apply_baseline, load_baseline
        baseline = load_baseline(args.baseline)
        if baseline is None:
            print(f"error: unreadable baseline: {args.baseline}",
                  file=sys.stderr)
            return 2
        findings = apply_baseline(findings, baseline)

    if fixed and args.output_format == "text":
        for path in fixed:
            print(f"fixed: {path}")
    _emit(findings, args.output_format)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
