"""SARIF 2.1.0 rendering of analysis findings.

One run, one driver (``repro-analyze``), one rule entry per registered
rule, one result per finding.  The output round-trips through GitHub
code scanning (``github/codeql-action/upload-sarif``), which turns each
result into an inline PR annotation at its file/line.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..core import Finding, RULES
from .baseline import fingerprint

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings: Sequence[Finding], *,
             tool_version: str = "1.0.0") -> dict[str, object]:
    """The SARIF log object for *findings*."""
    used_rules = sorted({finding.rule for finding in findings} | set(RULES))
    rule_index = {rule_id: index for index, rule_id in enumerate(used_rules)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULES[rule_id].summary if rule_id in RULES
                else rule_id,
            },
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in used_rules
    ]
    line_cache: dict[str, list[str]] = {}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    },
                },
            ],
            # Same content-addressed identity the baseline file uses, so
            # code scanning tracks a result across line-shifting edits.
            "partialFingerprints": {
                "reproAnalyzeFingerprint/v1":
                    fingerprint(finding, line_cache),
            },
        }
        for finding in findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri":
                            "https://example.invalid/repro/docs/analysis",
                        "version": tool_version,
                        "rules": rules,
                    },
                },
                "results": results,
            },
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """*findings* as a SARIF 2.1.0 JSON document."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
