"""Project-wide symbol table and context-annotated call graph.

A :class:`Project` is built once per analysis run from every parsed
module.  It resolves three symbol spaces:

* **functions** — every ``def`` (module-level functions and methods)
  under a dotted qualified name (``repro.index.catalog.Catalog.save``);
* **classes** — with their base classes (resolved through import maps
  when project-internal), declared ``__guarded_by__`` maps and method
  tables;
* **imports** — a per-module map from local name to the dotted thing it
  binds, used both for call resolution and for the incremental cache's
  import fingerprints.

Call sites are resolved to candidate callees through four strategies,
in order: same-module names, from-imports, module-attribute chains, and
``self.method`` lookup through the class MRO.  Unresolvable attribute
calls fall back to a method-name index (every project method with that
name) and are marked ``fallback=True`` so rules can decide whether an
over-approximated edge is acceptable.

Each call site carries its *lexical context*: the locks held at the
call (class-qualified where the receiver is ``self``, with local
aliases like ``lock = self._lock`` resolved), whether any of them is
the write or read side of an RW lock, and whether a
``CostModel.muted()`` scope is active.  Those annotations are what the
interprocedural rules propagate along the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from ..checkers import terminal_attr

if TYPE_CHECKING:  # pragma: no cover - type-only import avoids a cycle
    from ..core import Module

__all__ = ["Lock", "CallSite", "Acquisition", "FunctionInfo", "ClassInfo",
           "Project", "lock_matches"]

#: Constructors run single-threaded; writes and calls inside them are
#: exempt from lock requirements.
CTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__", "__del__"})


@dataclass(frozen=True)
class Lock:
    """One lock identity: attribute name, optionally class-qualified.

    ``self._lock`` inside ``repro.replica.deltalog.DeltaLog`` becomes
    ``Lock("_lock", "repro.replica.deltalog.DeltaLog")``; a lock reached
    through an unknown receiver keeps ``owner=None`` and matches by
    attribute name alone.
    """

    attr: str
    owner: str | None = None

    def render(self) -> str:
        return f"{self.owner}.{self.attr}" if self.owner else self.attr


def lock_matches(held: Lock, required: Lock) -> bool:
    """Does holding *held* satisfy a requirement for *required*?

    Attribute names must match; class qualification must match when both
    sides carry one (an unqualified side matches any owner).
    """
    if held.attr != required.attr:
        return False
    if held.owner is None or required.owner is None:
        return True
    return held.owner == required.owner


@dataclass(frozen=True)
class CallSite:
    """One call expression, annotated with its lexical context."""

    caller: str                       #: qualname of the enclosing function
    path: str
    line: int
    col: int
    callee_name: str                  #: terminal name as written
    candidates: tuple[str, ...]       #: resolved callee qualnames
    fallback: bool                    #: resolved only via the name index
    is_method_call: bool              #: written as ``x.name(...)``
    locks: tuple[tuple[Lock, str], ...]   #: (lock, side) held lexically
    muted: bool                       #: inside ``CostModel.muted()``

    def holds(self, required: Lock, *, sides: tuple[str, ...]) -> bool:
        """Is *required* held at this site on one of *sides*?"""
        return any(side in sides and lock_matches(lock, required)
                   for lock, side in self.locks)

    @property
    def write_side(self) -> bool:
        """Is any plain mutex or RW write side held here?"""
        return any(side in ("plain", "write") for _, side in self.locks)

    @property
    def read_side_only(self) -> bool:
        """Is the lexical context a read lock with no write-side hold?"""
        return (not self.write_side
                and any(side == "read" for _, side in self.locks))


@dataclass(frozen=True)
class Acquisition:
    """One ``with``-statement lock acquisition inside a function."""

    function: str
    path: str
    line: int
    col: int
    lock: Lock
    side: str
    #: Locks already held lexically when this one is taken.
    outer: tuple[Lock, ...]


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    path: str
    name: str
    class_qualname: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    decorators: frozenset[str]

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    @property
    def is_ctor(self) -> bool:
        return self.name in CTOR_NAMES

    @property
    def locked_convention(self) -> bool:
        """Does the name promise "caller holds the lock"?"""
        return self.name.endswith("_locked")

    def decorated_with(self, name: str) -> bool:
        return name in self.decorators


@dataclass
class ClassInfo:
    """One class definition with its guard declarations and methods."""

    qualname: str
    module: str
    node: ast.ClassDef
    base_names: tuple[str, ...]
    guarded_by: dict[str, str] = field(default_factory=dict)
    methods: dict[str, str] = field(default_factory=dict)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> frozenset[str]:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = terminal_attr(target)
        if name is not None:
            names.add(name)
    return frozenset(names)


def _guard_map(node: ast.ClassDef) -> dict[str, str]:
    """``attribute -> lock attribute`` from a ``__guarded_by__`` literal."""
    guarded: dict[str, str] = {}
    for statement in node.body:
        if not isinstance(statement, ast.Assign):
            continue
        if not any(isinstance(target, ast.Name)
                   and target.id == "__guarded_by__"
                   for target in statement.targets):
            continue
        if not isinstance(statement.value, ast.Dict):
            continue
        for key, value in zip(statement.value.keys, statement.value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        guarded[element.value] = key.value
    return guarded


class Project:
    """Symbol table + call graph over one set of analyzed modules."""

    def __init__(self, modules: Sequence["Module"]) -> None:
        self.modules = list(modules)
        self.module_by_name: dict[str, "Module"] = {}
        for module in self.modules:
            self.module_by_name.setdefault(module.module, module)
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method name -> every project method with that name.
        self.methods_by_name: dict[str, list[str]] = {}
        #: per-module ``local name -> dotted target`` binding map.
        self.imports: dict[str, dict[str, str]] = {}
        self.call_sites: list[CallSite] = []
        self.acquisitions: list[Acquisition] = []
        #: callee qualname -> sites calling it (candidates incl. fallback).
        self.callers: dict[str, list[CallSite]] = {}
        #: caller qualname -> its outgoing sites.
        self.sites_in: dict[str, list[CallSite]] = {}
        #: module name -> project-internal module names it imports.
        self.module_imports: dict[str, set[str]] = {}
        #: Scratch space for whole-program results computed once per
        #: run and shared across per-module checker invocations.
        self.memo: dict[str, object] = {}

        for module in self.modules:
            self._collect_imports(module)
        for module in self.modules:
            self._collect_symbols(module)
        for module in self.modules:
            self._collect_calls(module)
        for site in self.call_sites:
            self.sites_in.setdefault(site.caller, []).append(site)
            for candidate in site.candidates:
                self.callers.setdefault(candidate, []).append(site)

    # ------------------------------------------------------------------
    # Symbol collection
    # ------------------------------------------------------------------
    def _is_package(self, module: "Module") -> bool:
        return module.path.endswith("__init__.py")

    def _collect_imports(self, module: "Module") -> None:
        bindings: dict[str, str] = {}
        internal: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bindings[local] = (alias.name if alias.asname
                                       else alias.name.split(".")[0])
                    if alias.asname:
                        bindings[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = (f"{base}.{alias.name}" if base
                                       else alias.name)
        self.imports[module.module] = bindings
        for target in bindings.values():
            owner = self._owning_module(target)
            if owner is not None and owner != module.module:
                internal.add(owner)
        self.module_imports[module.module] = internal

    def _resolve_from_base(self, module: "Module",
                           node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        parts = module.module.split(".")
        if not self._is_package(module):
            parts = parts[:-1]
        parts = parts[:len(parts) - (node.level - 1)] if node.level > 1 else parts
        if not parts:
            return node.module
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _owning_module(self, dotted: str) -> str | None:
        """The longest project-module prefix of *dotted*, if any."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            prefix = ".".join(parts[:length])
            if prefix in self.module_by_name:
                return prefix
        return None

    def _collect_symbols(self, module: "Module") -> None:
        def visit(body: list[ast.stmt], class_info: ClassInfo | None) -> None:
            for statement in body:
                if isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                    if class_info is not None:
                        qualname = f"{class_info.qualname}.{statement.name}"
                        class_info.methods[statement.name] = qualname
                    else:
                        qualname = f"{module.module}.{statement.name}"
                    info = FunctionInfo(
                        qualname=qualname, module=module.module,
                        path=module.path, name=statement.name,
                        class_qualname=(class_info.qualname
                                        if class_info else None),
                        node=statement,
                        decorators=_decorator_names(statement))
                    self.functions[qualname] = info
                    if class_info is not None:
                        self.methods_by_name.setdefault(
                            statement.name, []).append(qualname)
                    # Nested defs are walked for calls but not given
                    # project-level identities.
                elif isinstance(statement, ast.ClassDef):
                    qualname = f"{module.module}.{statement.name}"
                    bases = tuple(
                        name for name in
                        (self._base_name(expr) for expr in statement.bases)
                        if name is not None)
                    info = ClassInfo(qualname=qualname, module=module.module,
                                     node=statement, base_names=bases,
                                     guarded_by=_guard_map(statement))
                    self.classes[qualname] = info
                    visit(statement.body, info)

        visit(module.tree.body, None)

    def _base_name(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Subscript):  # Generic[...] bases
            expr = expr.value
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            parts.reverse()
            return ".".join(parts)
        return None

    # ------------------------------------------------------------------
    # Class resolution
    # ------------------------------------------------------------------
    def resolve_class(self, module_name: str, name: str) -> ClassInfo | None:
        """Resolve a class name as written in *module_name*."""
        direct = self.classes.get(f"{module_name}.{name}")
        if direct is not None:
            return direct
        bindings = self.imports.get(module_name, {})
        head = name.split(".")[0]
        bound = bindings.get(head)
        if bound is None:
            return None
        dotted = bound + name[len(head):]
        info = self.classes.get(dotted)
        if info is not None:
            return info
        owner = self._owning_module(dotted)
        if owner is not None and dotted.startswith(owner + "."):
            return self.classes.get(dotted)
        return None

    def mro(self, class_info: ClassInfo) -> Iterator[ClassInfo]:
        """*class_info* then its project-internal bases, depth-first."""
        seen: set[str] = set()
        stack = [class_info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            for base_name in current.base_names:
                base = self.resolve_class(current.module, base_name)
                if base is not None:
                    stack.append(base)

    def lookup_method(self, class_info: ClassInfo,
                      name: str) -> str | None:
        for klass in self.mro(class_info):
            found = klass.methods.get(name)
            if found is not None:
                return found
        return None

    def guard_for(self, class_info: ClassInfo, attr: str) -> str | None:
        """The lock attribute guarding *attr*, searching the MRO."""
        for klass in self.mro(class_info):
            lock = klass.guarded_by.get(attr)
            if lock is not None:
                return lock
        return None

    # ------------------------------------------------------------------
    # Call + context collection
    # ------------------------------------------------------------------
    def _collect_calls(self, module: "Module") -> None:
        def visit(body: list[ast.stmt], class_info: ClassInfo | None) -> None:
            for statement in body:
                if isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                    if class_info is not None:
                        qualname = f"{class_info.qualname}.{statement.name}"
                    else:
                        qualname = f"{module.module}.{statement.name}"
                    walker = _FunctionWalker(self, module, qualname,
                                             class_info)
                    walker.walk(statement.body)
                elif isinstance(statement, ast.ClassDef):
                    info = self.classes.get(
                        f"{module.module}.{statement.name}")
                    visit(statement.body, info)

        visit(module.tree.body, None)

    def resolve_call(self, module: "Module", class_info: ClassInfo | None,
                     func: ast.expr) -> tuple[tuple[str, ...], bool, bool]:
        """``(candidates, fallback, is_method_call)`` for a call target."""
        if isinstance(func, ast.Name):
            name = func.id
            local = self.functions.get(f"{module.module}.{name}")
            if local is not None:
                return (local.qualname,), False, False
            bound = self.imports.get(module.module, {}).get(name)
            if bound is not None and bound in self.functions:
                return (bound,), False, False
            return (), False, False
        if not isinstance(func, ast.Attribute):
            return (), False, False
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        method = parts[0]
        if isinstance(node, ast.Name):
            parts.append(node.id)
            parts.reverse()
            root = parts[0]
            # self.method() -> MRO lookup in the enclosing class.
            if root == "self" and len(parts) == 2 and class_info is not None:
                found = self.lookup_method(class_info, method)
                if found is not None:
                    return (found,), False, True
            # module.attr chains through the import map.
            bindings = self.imports.get(module.module, {})
            bound = bindings.get(root)
            if bound is not None:
                dotted = ".".join([bound] + parts[1:])
                if dotted in self.functions:
                    return (dotted,), False, True
        # Fallback: every project method with this terminal name.
        candidates = tuple(self.methods_by_name.get(method, ()))
        return candidates, bool(candidates), True


class _FunctionWalker:
    """Walks one function body tracking lock / muted lexical context."""

    def __init__(self, project: Project, module: "Module", qualname: str,
                 class_info: ClassInfo | None) -> None:
        self.project = project
        self.module = module
        self.qualname = qualname
        self.class_info = class_info
        #: local name -> Lock for ``lock = self._lock`` style aliases.
        self.aliases: dict[str, Lock] = {}

    def walk(self, body: list[ast.stmt],
             locks: tuple[tuple[Lock, str], ...] = (),
             muted: bool = False) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested function: fresh context (it runs when called,
                # not where defined), same enclosing identity.
                self.walk(statement.body, (), False)
                continue
            if isinstance(statement, ast.Assign):
                self._record_alias(statement)
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                entered = list(locks)
                inner_muted = muted
                for item in statement.items:
                    self._scan_expr(item.context_expr, locks, muted)
                    guard = self.lock_from_with(item)
                    if guard is not None:
                        self.project.acquisitions.append(Acquisition(
                            function=self.qualname, path=self.module.path,
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                            lock=guard[0], side=guard[1],
                            outer=tuple(lock for lock, _ in entered)))
                        entered.append(guard)
                    if self._is_muted_item(item):
                        inner_muted = True
                self.walk(statement.body, tuple(entered), inner_muted)
                continue
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, locks, muted)
            for field_name in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field_name, None)
                if blocks:
                    self.walk(blocks, locks, muted)
            for handler in getattr(statement, "handlers", []) or []:
                self.walk(handler.body, locks, muted)

    # -- context helpers ----------------------------------------------
    def _record_alias(self, statement: ast.Assign) -> None:
        """Track ``lock = self._lock`` / ``lk = other.lock`` aliases."""
        if len(statement.targets) != 1:
            return
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            return
        lock = self._lock_identity(statement.value)
        if lock is not None and self._looks_like_lock(lock.attr):
            self.aliases[target.id] = lock
        elif target.id in self.aliases:
            del self.aliases[target.id]

    @staticmethod
    def _looks_like_lock(attr: str) -> bool:
        lowered = attr.lower()
        return "lock" in lowered or "mutex" in lowered or "rw" in lowered

    def _lock_identity(self, expr: ast.expr) -> Lock | None:
        """The Lock named by *expr*, resolving self-attrs and aliases."""
        if isinstance(expr, ast.Attribute):
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and self.class_info is not None):
                return Lock(expr.attr, self.class_info.qualname)
            return Lock(expr.attr, None)
        if isinstance(expr, ast.Name):
            alias = self.aliases.get(expr.id)
            if alias is not None:
                return alias
            return Lock(expr.id, None)
        return None

    def lock_from_with(self, item: ast.withitem) -> tuple[Lock, str] | None:
        """``(lock, side)`` for one with-item, if lock-shaped."""
        expr = item.context_expr
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            side = expr.func.attr
            if side in ("write", "read"):
                lock = self._lock_identity(expr.func.value)
                if lock is not None:
                    return lock, side
            return None
        lock = self._lock_identity(expr)
        if lock is not None and self._looks_like_lock(lock.attr):
            return lock, "plain"
        return None

    @staticmethod
    def _is_muted_item(item: ast.withitem) -> bool:
        expr = item.context_expr
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "muted")

    # -- call recording ------------------------------------------------
    def _scan_expr(self, expr: ast.expr,
                   locks: tuple[tuple[Lock, str], ...],
                   muted: bool) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee = terminal_attr(node.func)
            if callee is None:
                continue
            candidates, fallback, is_method = self.project.resolve_call(
                self.module, self.class_info, node.func)
            self.project.call_sites.append(CallSite(
                caller=self.qualname, path=self.module.path,
                line=node.lineno, col=node.col_offset,
                callee_name=callee, candidates=candidates,
                fallback=fallback, is_method_call=is_method,
                locks=locks, muted=muted))
