"""Per-function control-flow graphs for all-exit-paths analyses.

The graph is statement-granular: one node per simple statement (plus
condition nodes for ``if``/``while`` and context-expression nodes for
``with``), with edges for sequencing, branching, loops, ``break``/
``continue``, ``return``/``raise``, and ``try``/``except``/``finally``
routing.  Two build modes:

* ``exception_edges=False`` — only *explicit* control flow.  Used by
  the telemetry-on-every-exit rule, where the exits that matter are
  ``return`` statements, explicit ``raise`` statements and falling off
  the end.
* ``exception_edges=True`` — every statement additionally gets
  may-raise edges to the enclosing handler entries / ``finally`` block
  / the exceptional exit.  Used by the resource-lifecycle rules, where
  a leak on the exceptional path is exactly the bug class.

The analysis primitive is :meth:`CFG.reachable_without`: the set of
nodes reachable from a start set along paths that never pass through a
"barrier" node.  "Is there an exit the resource can leak through" and
"is there a return no telemetry call precedes" are both instances.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

__all__ = ["Node", "CFG", "build_cfg"]


class Node:
    """One CFG node wrapping at most one AST statement/expression."""

    __slots__ = ("index", "stmt", "kind", "succ", "pred", "exc_succ")

    def __init__(self, index: int, stmt: ast.AST | None, kind: str) -> None:
        self.index = index
        self.stmt = stmt
        #: "entry" | "exit" | "exc_exit" | "stmt" | "return" | "raise"
        #: | "with" (a with-statement's context expression)
        self.kind = kind
        self.succ: list["Node"] = []
        self.pred: list["Node"] = []
        #: May-raise successors (``exception_edges=True`` builds only) —
        #: kept apart from ``succ`` so analyses can skip the *start*
        #: statement's own failure (e.g. an acquisition that never
        #: completed cannot leak) while still following every later
        #: exceptional path.
        self.exc_succ: list["Node"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"<Node {self.index} {self.kind} {label}>"


class CFG:
    """A built control-flow graph for one function body."""

    def __init__(self, nodes: list[Node], entry: Node, exit_normal: Node,
                 exit_exceptional: Node) -> None:
        self.nodes = nodes
        self.entry = entry
        self.exit_normal = exit_normal
        self.exit_exceptional = exit_exceptional

    def exits(self) -> list[Node]:
        return [self.exit_normal, self.exit_exceptional]

    def statement_nodes(self) -> Iterable[Node]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def reachable_without(self, starts: Iterable[Node],
                          barrier: Callable[[Node], bool], *,
                          exceptional: bool = True) -> set[Node]:
        """Nodes reachable from *starts* without crossing a barrier.

        A start node that is itself a barrier does not propagate.  The
        returned set includes the start nodes (reachability via the
        empty path).  ``exceptional=False`` ignores may-raise edges.
        """
        seen: set[Node] = set()
        stack = list(starts)
        for node in stack:
            seen.add(node)
        while stack:
            node = stack.pop()
            if barrier(node):
                continue
            successors = (node.succ + node.exc_succ if exceptional
                          else node.succ)
            for nxt in successors:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


class _Frame:
    """Loop / try context during construction."""

    __slots__ = ("break_to", "continue_to")

    def __init__(self, break_to: Node, continue_to: Node) -> None:
        self.break_to = break_to
        self.continue_to = continue_to


class _Builder:
    def __init__(self, exception_edges: bool) -> None:
        self.exception_edges = exception_edges
        self.nodes: list[Node] = []
        self.entry = self._node(None, "entry")
        self.exit_normal = self._node(None, "exit")
        self.exit_exceptional = self._node(None, "exc_exit")
        self.loop_stack: list[_Frame] = []
        #: Where an in-flight exception goes: handler entries plus the
        #: final backstop (finally entry or the exceptional exit).
        self.exc_targets: list[list[Node]] = [[self.exit_exceptional]]
        #: Where a ``return`` goes (innermost finally first).
        self.return_targets: list[Node] = [self.exit_normal]

    def _node(self, stmt: ast.AST | None, kind: str = "stmt") -> Node:
        node = Node(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    @staticmethod
    def _link(src: Node, dst: Node) -> None:
        if dst not in src.succ:
            src.succ.append(dst)
            dst.pred.append(src)

    def _link_exceptional(self, node: Node) -> None:
        if self.exception_edges:
            for target in self.exc_targets[-1]:
                if target not in node.exc_succ:
                    node.exc_succ.append(target)

    # ------------------------------------------------------------------
    def build(self, body: list[ast.stmt]) -> CFG:
        frontier = self._block(body, [self.entry])
        for node in frontier:
            self._link(node, self.exit_normal)
        return CFG(self.nodes, self.entry, self.exit_normal,
                   self.exit_exceptional)

    def _block(self, body: list[ast.stmt],
               frontier: list[Node]) -> list[Node]:
        for statement in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._statement(statement, frontier)
        return frontier

    def _statement(self, stmt: ast.stmt,
                   frontier: list[Node]) -> list[Node]:
        if isinstance(stmt, ast.Return):
            node = self._node(stmt, "return")
            self._attach(frontier, node)
            self._link(node, self.return_targets[-1])
            return []
        if isinstance(stmt, ast.Raise):
            node = self._node(stmt, "raise")
            self._attach(frontier, node)
            for target in self.exc_targets[-1]:
                self._link(node, target)
            return []
        if isinstance(stmt, ast.Break):
            node = self._node(stmt)
            self._attach(frontier, node)
            if self.loop_stack:
                self._link(node, self.loop_stack[-1].break_to)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._node(stmt)
            self._attach(frontier, node)
            if self.loop_stack:
                self._link(node, self.loop_stack[-1].continue_to)
            return []
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        node = self._node(stmt)
        self._attach(frontier, node)
        self._link_exceptional(node)
        return [node]

    def _attach(self, frontier: list[Node], node: Node) -> None:
        for prev in frontier:
            self._link(prev, node)

    def _if(self, stmt: ast.If, frontier: list[Node]) -> list[Node]:
        test = self._node(stmt.test)
        self._attach(frontier, test)
        self._link_exceptional(test)
        then_out = self._block(stmt.body, [test])
        else_out = self._block(stmt.orelse, [test]) if stmt.orelse else [test]
        return then_out + else_out

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              frontier: list[Node]) -> list[Node]:
        header_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        header = self._node(header_expr)
        self._attach(frontier, header)
        self._link_exceptional(header)
        after = self._node(None, "stmt")  # join node after the loop
        self.loop_stack.append(_Frame(after, header))
        body_out = self._block(stmt.body, [header])
        for node in body_out:
            self._link(node, header)
        self.loop_stack.pop()
        else_out = (self._block(stmt.orelse, [header])
                    if stmt.orelse else [header])
        for node in else_out:
            self._link(node, after)
        return [after]

    def _with(self, stmt: ast.With | ast.AsyncWith,
              frontier: list[Node]) -> list[Node]:
        enter = self._node(stmt.items[0].context_expr, "with")
        self._attach(frontier, enter)
        self._link_exceptional(enter)
        return self._block(stmt.body, [enter])

    def _try(self, stmt: ast.Try, frontier: list[Node]) -> list[Node]:
        handler_entries: list[Node] = []
        for handler in stmt.handlers:
            handler_entries.append(self._node(handler, "stmt"))
        finally_entry = (self._node(None, "stmt")
                         if stmt.finalbody else None)

        # Exceptions raised in the body route to the handlers, then the
        # finally block (or the outer targets when there is none).
        body_targets = list(handler_entries)
        if finally_entry is not None:
            body_targets.append(finally_entry)
        elif not handler_entries:
            body_targets = list(self.exc_targets[-1])
        else:
            # Handlers may not match: the exception escapes outward.
            body_targets.extend(self.exc_targets[-1])

        self.exc_targets.append(body_targets)
        if finally_entry is not None:
            self.return_targets.append(finally_entry)
        body_out = self._block(stmt.body, list(frontier))
        self.exc_targets.pop()
        if finally_entry is not None:
            self.return_targets.pop()

        else_out = (self._block(stmt.orelse, body_out)
                    if stmt.orelse else body_out)

        # Handler bodies: exceptions inside them go to finally/outer.
        handler_targets = ([finally_entry] if finally_entry is not None
                           else list(self.exc_targets[-1]))
        handler_outs: list[Node] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.exc_targets.append(handler_targets)
            if finally_entry is not None:
                self.return_targets.append(finally_entry)
            outs = self._block(handler.body, [entry])
            self.exc_targets.pop()
            if finally_entry is not None:
                self.return_targets.pop()
            handler_outs.extend(outs)

        if finally_entry is None:
            return else_out + handler_outs

        # finally: built once; its exits continue both normally and
        # along every outer continuation (exception propagation,
        # returns) — an over-approximation that merges the duplicated-
        # finally continuations real compilers track separately.
        for node in else_out + handler_outs:
            self._link(node, finally_entry)
        finally_out = self._block(stmt.finalbody, [finally_entry])
        for node in finally_out:
            for target in self.exc_targets[-1]:
                self._link(node, target)
            self._link(node, self.return_targets[-1])
        return finally_out


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef, *,
              exception_edges: bool = False) -> CFG:
    """Build the CFG for one function body."""
    return _Builder(exception_edges).build(func.body)
