"""``repro analyze --fix``: automatic removal of TRX601 unused imports.

The fixer re-derives the unused bindings exactly as the checker does
(same used/exported/string-token logic), so fix-then-reanalyze is a
fixed point: one pass removes every fixable finding, a second pass
changes nothing.  Pragmas are respected — an import carrying (or
covered by) ``# repro: allow[TRX601]`` / ``allow-file`` is left alone.

Statements are rewritten bottom-up by source span: a statement whose
bindings are all unused is deleted outright; a partially-used statement
is re-rendered keeping only the used aliases (trailing same-line
comments on such statements are not preserved — a comment worth keeping
belongs on its own line or in a pragma).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..core import Module
from ..checkers.imports import (bound_aliases, exported_names, local_name,
                                string_tokens, used_names)

__all__ = ["FixResult", "fix_unused_imports"]

#: Width beyond which a rewritten from-import wraps into parentheses.
_WRAP_COLUMN = 79


@dataclass
class FixResult:
    """Outcome of fixing one module's source."""

    source: str
    removed: int          #: import bindings removed
    changed: bool


def _render_alias(alias: ast.alias) -> str:
    if alias.asname:
        return f"{alias.name} as {alias.asname}"
    return alias.name


def _render_import(node: ast.Import | ast.ImportFrom,
                   keep: list[ast.alias], indent: str) -> list[str]:
    if isinstance(node, ast.Import):
        return [f"{indent}import " + ", ".join(_render_alias(alias)
                                               for alias in keep)]
    origin = "." * node.level + (node.module or "")
    rendered = ", ".join(_render_alias(alias) for alias in keep)
    single = f"{indent}from {origin} import {rendered}"
    if len(single) <= _WRAP_COLUMN:
        return [single]
    lines = [f"{indent}from {origin} import ("]
    for alias in keep:
        lines.append(f"{indent}    {_render_alias(alias)},")
    lines.append(f"{indent})")
    return lines


def fix_unused_imports(module: Module) -> FixResult:
    """Remove unused import bindings from *module*'s source."""
    used = used_names(module.tree)
    exported = exported_names(module.tree)
    tokens = string_tokens(module.tree)

    def is_used(local: str) -> bool:
        return local in used or local in exported or local in tokens

    edits: list[tuple[int, int, list[str]]] = []
    removed = 0
    for node, aliases in bound_aliases(module.tree):
        if module.is_allowed("TRX601", node.lineno):
            continue
        keep = [alias for alias in aliases
                if is_used(local_name(node, alias))]
        if len(keep) == len(aliases):
            continue
        removed += len(aliases) - len(keep)
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        first_line = module.lines[node.lineno - 1]
        indent = first_line[:len(first_line) - len(first_line.lstrip())]
        replacement = _render_import(node, keep, indent) if keep else []
        edits.append((node.lineno, end, replacement))

    if not edits:
        return FixResult(module.source, removed=0, changed=False)

    lines = list(module.lines)
    for start, end, replacement in sorted(edits, reverse=True):
        lines[start - 1:end] = replacement
    trailing_newline = module.source.endswith("\n")
    source = "\n".join(lines) + ("\n" if trailing_newline else "")
    return FixResult(source, removed=removed, changed=True)
