"""Interprocedural function summaries over the project call graph.

Four analyses, all fixpoints over :class:`~repro.analysis.flow.project.
Project` edges:

* **Lock requirements** — a ``*_locked`` function that writes
  ``__guarded_by__`` state without taking the lock itself *requires*
  that lock on entry.  The requirement propagates up through further
  ``*_locked`` callers; a call site that neither holds the lock nor
  passes the buck by convention is a violation (the cross-function
  TRX101/TRX102).
* **Write-context requirements** — call sites of
  ``@mutates_engine_state`` methods must run on the writer side: under
  a plain mutex / RW ``write()`` scope, inside a constructor, inside
  another decorated method, or inside a ``*_locked`` function whose own
  callers are checked the same way (the TRX902 engine).
* **Uncharged-decode summaries** — a function that (transitively)
  performs an uncharged block decode outside a ``muted()`` scope is
  summarized as uncharged; calls to such functions from query-path
  packages are the cross-function TRX201.  Pragma-allowed sites are
  treated as documented-uncharged and do not poison the summary.
* **Lock-order graph** — each ``with`` acquisition, combined with the
  locks possibly held on entry (propagated down the call graph), adds
  ordering edges; cycles are static lock-order inversions (TRX103)
  complementing the runtime sanitizer.

Plus a small **telemetry-emission summary** (does a function,
transitively, emit telemetry?) consumed by the TRX903 exit checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from .project import CallSite, FunctionInfo, Lock, Project

__all__ = ["LockViolation", "WriteSite", "guarded_writes",
           "lock_requirement_violations", "write_context_violations",
           "uncharged_functions", "telemetry_emitters",
           "lock_order_cycles", "LockOrderEdge"]

MUTATOR_DECORATOR = "mutates_engine_state"
UNCHARGED_CALLS = frozenset({"entries", "segment_entries", "decode_block"})
TELEMETRY_METHODS = frozenset({"incr", "observe", "register_gauge"})


@dataclass(frozen=True)
class WriteSite:
    """One write to a guarded attribute inside some function."""

    function: str
    attr: str
    lock: Lock
    line: int
    col: int
    covered: bool      #: lexically under the lock's plain/write side
    read_side: bool    #: lexically under the read side only


@dataclass(frozen=True)
class LockViolation:
    """One cross-function lock-discipline violation at a call site."""

    rule: str          #: "TRX101" or "TRX102"
    site: CallSite
    lock: Lock
    target: str        #: the requiring function's qualname
    chain: tuple[str, ...]


def _function_for(project: Project, qualname: str) -> FunctionInfo | None:
    return project.functions.get(qualname)


# ----------------------------------------------------------------------
# Guarded writes (shared by the intra rule and the requirement seeds)
# ----------------------------------------------------------------------
def guarded_writes(project: Project,
                   info: FunctionInfo) -> list[WriteSite]:
    """Every write to a ``__guarded_by__`` attribute in *info*.

    Lock coverage is judged lexically with local aliases resolved (the
    collection in :class:`_GuardWalker` mirrors the project walker's
    context tracking).
    """
    if info.class_qualname is None:
        return []
    class_info = project.classes.get(info.class_qualname)
    if class_info is None:
        return []
    guard_of = {attr: project.guard_for(class_info, attr)
                for klass in project.mro(class_info)
                for attr in klass.guarded_by}
    if not guard_of:
        return []
    walker = _GuardWalker(project, info, guard_of)
    walker.walk(info.node.body, ())
    return walker.writes


class _GuardWalker:
    """Collects guarded-attribute writes with lock context + aliases."""

    def __init__(self, project: Project, info: FunctionInfo,
                 guard_of: dict[str, str | None]) -> None:
        self.project = project
        self.info = info
        self.guard_of = guard_of
        self.writes: list[WriteSite] = []
        self.aliases: dict[str, str] = {}

    def walk(self, body: list[ast.stmt],
             active: tuple[tuple[str, str], ...]) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.walk(statement.body, active)
                continue
            if isinstance(statement, ast.Assign):
                self._record_alias(statement)
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                entered = list(active)
                for item in statement.items:
                    guard = self._with_guard(item)
                    if guard is not None:
                        entered.append(guard)
                self.walk(statement.body, tuple(entered))
                continue
            self._check_statement(statement, active)
            for field_name in ("body", "orelse", "finalbody"):
                blocks = getattr(statement, field_name, None)
                if blocks:
                    self.walk(blocks, active)
            for handler in getattr(statement, "handlers", []) or []:
                self.walk(handler.body, active)

    def _record_alias(self, statement: ast.Assign) -> None:
        if len(statement.targets) != 1:
            return
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = statement.value
        if isinstance(value, ast.Attribute):
            self.aliases[target.id] = value.attr
        elif target.id in self.aliases:
            del self.aliases[target.id]

    def _with_guard(self, item: ast.withitem) -> tuple[str, str] | None:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            side = expr.func.attr
            if side in ("write", "read"):
                name = self._resolve_name(expr.func.value)
                if name is not None:
                    return name, side
            return None
        name = self._resolve_name(expr)
        if name is not None:
            return name, "plain"
        return None

    def _resolve_name(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return self.aliases.get(expr.id, expr.id)
        return None

    def _check_statement(self, statement: ast.stmt,
                         active: tuple[tuple[str, str], ...]) -> None:
        if not isinstance(statement, (ast.Assign, ast.AugAssign,
                                      ast.AnnAssign)):
            return
        targets: list[ast.expr]
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        else:
            targets = [statement.target]
        stack = targets
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
                continue
            attr: str | None = None
            line = col = 0
            if isinstance(target, ast.Attribute):
                attr, line, col = target.attr, target.lineno, target.col_offset
            elif (isinstance(target, ast.Subscript)
                  and isinstance(target.value, ast.Attribute)):
                attr = target.value.attr
                line, col = target.lineno, target.col_offset
            if attr is None:
                continue
            lock_attr = self.guard_of.get(attr)
            if lock_attr is None:
                continue
            sides = {side for name, side in active if name == lock_attr}
            self.writes.append(WriteSite(
                function=self.info.qualname, attr=attr,
                lock=Lock(lock_attr, self.info.class_qualname),
                line=line, col=col,
                covered=bool(sides & {"plain", "write"}),
                read_side=(not (sides & {"plain", "write"})
                           and "read" in sides)))


# ----------------------------------------------------------------------
# Cross-function lock requirements (TRX101/TRX102 upgrade)
# ----------------------------------------------------------------------
def lock_requirement_violations(project: Project) -> list[LockViolation]:
    """Call sites that break a callee's caller-holds-the-lock contract."""
    seeds: list[tuple[str, Lock]] = []
    for info in project.functions.values():
        if not info.locked_convention:
            continue
        if info.is_ctor or info.decorated_with(MUTATOR_DECORATOR):
            continue
        required: set[Lock] = set()
        for write in guarded_writes(project, info):
            if not write.covered:
                required.add(write.lock)
        for lock in sorted(required, key=lambda l: (l.attr, l.owner or "")):
            seeds.append((info.qualname, lock))

    violations: list[LockViolation] = []
    emitted: set[tuple[str, int, int, str, str]] = set()
    for target, lock in seeds:
        _propagate_lock(project, target, lock, (target,), violations,
                        emitted, set())
    violations.sort(key=lambda v: (v.site.path, v.site.line, v.site.col,
                                   v.rule))
    return violations


def _propagate_lock(project: Project, qualname: str, lock: Lock,
                    chain: tuple[str, ...],
                    violations: list[LockViolation],
                    emitted: set[tuple[str, int, int, str, str]],
                    visited: set[tuple[str, str]]) -> None:
    key = (qualname, lock.render())
    if key in visited:
        return
    visited.add(key)
    for site in project.callers.get(qualname, ()):
        if site.holds(lock, sides=("plain", "write")):
            continue
        caller = _function_for(project, site.caller)
        if caller is None:
            continue
        if caller.is_ctor or caller.decorated_with(MUTATOR_DECORATOR):
            continue
        if site.holds(lock, sides=("read",)):
            mark = (site.path, site.line, site.col, "TRX102", lock.attr)
            if mark not in emitted:
                emitted.add(mark)
                violations.append(LockViolation("TRX102", site, lock,
                                                chain[0], chain))
            continue
        if caller.locked_convention:
            _propagate_lock(project, caller.qualname, lock,
                            (caller.qualname,) + chain, violations,
                            emitted, visited)
            continue
        mark = (site.path, site.line, site.col, "TRX101", lock.attr)
        if mark not in emitted:
            emitted.add(mark)
            violations.append(LockViolation("TRX101", site, lock,
                                            chain[0], chain))


# ----------------------------------------------------------------------
# Write-context requirements (TRX902)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WriteContextViolation:
    """A mutator reached from a context that is not write-side."""

    site: CallSite
    target: str
    read_side: bool
    chain: tuple[str, ...]


def write_context_violations(project: Project) -> list[WriteContextViolation]:
    """Call sites of ``@mutates_engine_state`` methods off the writer side."""
    mutators = sorted(
        info.qualname for info in project.functions.values()
        if info.decorated_with(MUTATOR_DECORATOR))
    violations: list[WriteContextViolation] = []
    emitted: set[tuple[str, int, int]] = set()
    for target in mutators:
        _propagate_write_context(project, target, (target,), violations,
                                 emitted, set())
    violations.sort(key=lambda v: (v.site.path, v.site.line, v.site.col))
    return violations


def _propagate_write_context(project: Project, qualname: str,
                             chain: tuple[str, ...],
                             violations: list[WriteContextViolation],
                             emitted: set[tuple[str, int, int]],
                             visited: set[str]) -> None:
    if qualname in visited:
        return
    visited.add(qualname)
    for site in project.callers.get(qualname, ()):
        caller = _function_for(project, site.caller)
        if caller is None:
            continue
        if site.write_side:
            continue
        if caller.is_ctor or caller.decorated_with(MUTATOR_DECORATOR):
            continue
        if site.read_side_only:
            mark = (site.path, site.line, site.col)
            if mark not in emitted:
                emitted.add(mark)
                violations.append(WriteContextViolation(
                    site, chain[0], True, chain))
            continue
        if caller.locked_convention:
            _propagate_write_context(project, caller.qualname,
                                     (caller.qualname,) + chain,
                                     violations, emitted, visited)
            continue
        mark = (site.path, site.line, site.col)
        if mark not in emitted:
            emitted.add(mark)
            violations.append(WriteContextViolation(
                site, chain[0], False, chain))


# ----------------------------------------------------------------------
# Uncharged-decode summaries (TRX201 upgrade)
# ----------------------------------------------------------------------
def uncharged_functions(project: Project) -> set[str]:
    """Functions that (transitively) decode blocks uncharged.

    A direct uncharged call under a ``muted()`` scope, or carrying a
    ``# repro: allow[TRX201]`` pragma (a documented uncharged
    maintenance path), does not poison the summary; neither does a
    call forwarded through a ``muted()`` scope.
    """
    dirty: set[str] = set()
    for site in project.call_sites:
        if site.callee_name not in UNCHARGED_CALLS or site.muted:
            continue
        module = project.module_by_name.get(_module_of(project, site.caller))
        if module is not None and module.is_allowed("TRX201", site.line):
            continue
        dirty.add(site.caller)
    # Upward fixpoint: callers of dirty functions become dirty unless
    # the call is muted.
    changed = True
    while changed:
        changed = False
        for name in sorted(dirty):
            for site in project.callers.get(name, ()):
                if site.muted or site.caller in dirty:
                    continue
                dirty.add(site.caller)
                changed = True
    return dirty


def _module_of(project: Project, qualname: str) -> str:
    info = project.functions.get(qualname)
    if info is not None:
        return info.module
    return qualname.rsplit(".", 1)[0]


# ----------------------------------------------------------------------
# Telemetry-emission summaries (TRX903 support)
# ----------------------------------------------------------------------
def _emits_directly(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in TELEMETRY_METHODS:
            continue
        receiver = func.value
        chain: list[str] = []
        while isinstance(receiver, ast.Attribute):
            chain.append(receiver.attr)
            receiver = receiver.value
        if isinstance(receiver, ast.Name):
            chain.append(receiver.id)
        if any("telemetry" in part.lower() for part in chain):
            return True
    return False


def telemetry_emitters(project: Project) -> set[str]:
    """Functions that (transitively) emit telemetry."""
    emitters = {info.qualname for info in project.functions.values()
                if _emits_directly(info.node)}
    changed = True
    while changed:
        changed = False
        for name in sorted(emitters):
            for site in project.callers.get(name, ()):
                if site.fallback or site.caller in emitters:
                    continue
                emitters.add(site.caller)
                changed = True
    return emitters


# ----------------------------------------------------------------------
# Static lock-order graph (TRX103)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockOrderEdge:
    """One observed ordering: *outer* held while *inner* is acquired."""

    outer: Lock
    inner: Lock
    path: str
    line: int
    col: int
    function: str


def _entry_held(project: Project) -> dict[str, frozenset[Lock]]:
    """Locks possibly held when each function is entered (may-analysis).

    Propagated down resolved (non-fallback) call edges only; fallback
    edges over-approximate too wildly to be useful here.
    """
    held: dict[str, set[Lock]] = {name: set() for name in project.functions}
    changed = True
    while changed:
        changed = False
        for name in project.functions:
            incoming: set[Lock] = set()
            for site in project.callers.get(name, ()):
                if site.fallback:
                    continue
                incoming.update(lock for lock, side in site.locks)
                incoming.update(held.get(site.caller, ()))
            if not incoming <= held[name]:
                held[name].update(incoming)
                changed = True
    return {name: frozenset(locks) for name, locks in held.items()}


def lock_order_edges(project: Project) -> list[LockOrderEdge]:
    held = _entry_held(project)
    edges: list[LockOrderEdge] = []
    seen: set[tuple[Lock, Lock, str, int]] = set()
    for acq in project.acquisitions:
        outers = set(acq.outer) | set(held.get(acq.function, frozenset()))
        for outer in outers:
            if outer == acq.lock:
                continue
            mark = (outer, acq.lock, acq.path, acq.line)
            if mark in seen:
                continue
            seen.add(mark)
            edges.append(LockOrderEdge(outer, acq.lock, acq.path,
                                       acq.line, acq.col, acq.function))
    return edges


def lock_order_cycles(project: Project) -> list[tuple[tuple[Lock, ...],
                                                      list[LockOrderEdge]]]:
    """Every lock-order cycle: the cycle's locks plus its edges."""
    edges = lock_order_edges(project)
    graph: dict[Lock, set[Lock]] = {}
    for edge in edges:
        graph.setdefault(edge.outer, set()).add(edge.inner)
        graph.setdefault(edge.inner, set())
    sccs = _tarjan(graph)
    cycles: list[tuple[tuple[Lock, ...], list[LockOrderEdge]]] = []
    for component in sccs:
        if len(component) < 2:
            continue
        members = set(component)
        cycle_edges = [edge for edge in edges
                       if edge.outer in members and edge.inner in members]
        ordered = tuple(sorted(component, key=lambda l: l.render()))
        cycles.append((ordered, cycle_edges))
    cycles.sort(key=lambda item: tuple(l.render() for l in item[0]))
    return cycles


def _tarjan(graph: dict[Lock, set[Lock]]) -> list[list[Lock]]:
    index: dict[Lock, int] = {}
    low: dict[Lock, int] = {}
    on_stack: set[Lock] = set()
    stack: list[Lock] = []
    counter = [0]
    components: list[list[Lock]] = []

    def strongconnect(node: Lock) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for neighbour in sorted(graph.get(node, ()),
                                key=lambda l: l.render()):
            if neighbour not in index:
                strongconnect(neighbour)
                low[node] = min(low[node], low[neighbour])
            elif neighbour in on_stack:
                low[node] = min(low[node], index[neighbour])
        if low[node] == index[node]:
            component: list[Lock] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            components.append(component)

    for node in sorted(graph, key=lambda l: l.render()):
        if node not in index:
            strongconnect(node)
    return components


def iter_write_sites(project: Project) -> Iterable[tuple[FunctionInfo,
                                                         WriteSite]]:
    """Every guarded write in the project, with its enclosing function."""
    for info in project.functions.values():
        for write in guarded_writes(project, info):
            yield info, write
