"""repro.analysis.flow — the whole-program dataflow engine.

The per-file checkers of PR 4 are blind across call boundaries: a
``*_locked`` helper that mutates guarded state is exempt inside its own
body, but nothing checked that its callers actually hold the lock; an
uncharged block decode hidden behind an owner-module wrapper never
showed up on a query path.  This package closes that gap:

* :mod:`project` builds a project-wide symbol table and call graph over
  every analyzed module — functions and methods by qualified name,
  class hierarchies, import maps, and one :class:`CallSite` per call
  with its *lexical context* (locks held, read/write side, ``muted()``
  scopes) attached to the edge;
* :mod:`cfg` builds per-function control-flow graphs (with optional
  may-raise edges) for the all-exit-paths analyses — resources closed
  on every path, telemetry emitted on every exit;
* :mod:`summaries` computes interprocedural function summaries (locks
  required on entry, locks possibly held on entry, uncharged decodes,
  telemetry emission) by fixpoint over the call graph, plus the static
  lock-order graph whose cycles complement the runtime sanitizer;
* :mod:`cache` is the incremental result cache keyed by file hash +
  transitive import fingerprint, so warm full-repo runs skip parsing
  entirely;
* :mod:`sarif` renders findings as SARIF 2.1.0 for GitHub
  code-scanning annotations, and :mod:`baseline` implements the
  committed suppression file that lets new rules land strict;
* :mod:`fixer` applies the ``--fix`` autofixes (TRX601 unused
  imports).

The engine is consulted by checkers through the ``project`` argument of
``Checker.check`` — intraprocedural rules ignore it, the upgraded
lock-discipline / cost-charging rules and the TRX8xx/TRX9xx families
read call-graph context and summaries from it.
"""

from .project import CallSite, ClassInfo, FunctionInfo, Project

__all__ = ["CallSite", "ClassInfo", "FunctionInfo", "Project"]
