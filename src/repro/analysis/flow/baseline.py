"""The committed baseline / suppression file.

New rules should land strict without blocking unrelated work: findings
recorded in the baseline are filtered from the run's output (and from
its exit status), while *new* findings — anything not in the baseline —
still fail.  ``repro analyze --write-baseline`` records the current
findings; ``--baseline`` (the default when the file exists) applies it.

Fingerprints are content-addressed, not line-addressed: the hash covers
the rule id, the path, the message, and the stripped source line text —
so unrelated edits that shift a finding up or down do not dodge (or
break) its suppression.  Duplicate findings on identical lines are
counted: a baseline with two occurrences masks two, not unlimited.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from ..core import Finding

__all__ = ["fingerprint", "load_baseline", "write_baseline",
           "apply_baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


def _source_line(finding: Finding,
                 line_cache: dict[str, list[str]]) -> str:
    lines = line_cache.get(finding.path)
    if lines is None:
        try:
            lines = Path(finding.path).read_text(
                encoding="utf-8").splitlines()
        except OSError:
            lines = []
        line_cache[finding.path] = lines
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""


def fingerprint(finding: Finding,
                line_cache: dict[str, list[str]]) -> str:
    """Line-drift-tolerant identity of one finding."""
    digest = hashlib.sha256()
    for part in (finding.rule, finding.path, finding.message,
                 _source_line(finding, line_cache)):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def load_baseline(path: str) -> Counter[str] | None:
    """The fingerprint multiset from *path*, or None when unusable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        return None
    entries = raw.get("entries")
    if not isinstance(entries, dict):
        return None
    return Counter({str(key): int(value) for key, value in entries.items()
                    if isinstance(value, int) and value > 0})


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Record *findings* as the new baseline; returns the entry count."""
    line_cache: dict[str, list[str]] = {}
    counts: Counter[str] = Counter(
        fingerprint(finding, line_cache) for finding in findings)
    payload = {
        "version": BASELINE_VERSION,
        "entries": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return sum(counts.values())


def apply_baseline(findings: Sequence[Finding],
                   baseline: Counter[str]) -> list[Finding]:
    """*findings* with baseline-recorded occurrences removed."""
    remaining = Counter(baseline)
    line_cache: dict[str, list[str]] = {}
    kept: list[Finding] = []
    for finding in findings:
        key = fingerprint(finding, line_cache)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            continue
        kept.append(finding)
    return kept
