"""Incremental result cache keyed by file hash + import fingerprint.

The cache is one JSON file mapping every analyzed source path to its
content hash, the project-internal source paths it imports, and the
findings reported for it.  Two reuse tiers:

* **Pure warm hit** — every file's hash matches the cache: the stored
  findings are returned without parsing a single module.  This is the
  CI fast path; hashing ~100 files costs milliseconds where a full
  parse + whole-program analysis costs seconds.
* **Partial reuse** — some files changed: the project is rebuilt (the
  whole-program pass needs every AST), but per-file findings are reused
  for files whose *transitive import fingerprint* is unchanged — the
  hash of the file plus everything it (transitively) imports.  Editing
  a callee therefore re-analyzes every caller that imports it, which is
  what makes interprocedural findings cache-safe: a cross-function
  violation is always reported at the call site, and the call site's
  module imports (directly or transitively) the callee it resolves to.

Known approximation: call edges resolved through the method-name
fallback (receiver of unknown type) can cross module boundaries that no
import records.  Cold runs — which CI's gate performs — are always
authoritative; the cache exists for the warm-timing path and local
iteration.

The cache key includes a schema version and the registered-rule
signature, so a new rule or a changed checker invalidates everything.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..core import (Finding, RULES, analyze_modules, iter_sources,
                    make_module)

__all__ = ["CacheResult", "analyze_with_cache", "rules_signature",
           "CACHE_VERSION"]

CACHE_VERSION = 1


@dataclass
class CacheResult:
    """The outcome of one cached analysis run."""

    findings: list[Finding]
    #: Pure warm hit: nothing was parsed, every finding came from cache.
    hit: bool
    #: Files whose cached findings were reused (partial runs).
    reused_files: int
    #: Files actually re-analyzed.
    analyzed_files: int


def rules_signature() -> str:
    """A digest over the registered rule set (cache invalidation key)."""
    digest = hashlib.sha256()
    for rule_id in sorted(RULES):
        digest.update(rule_id.encode())
        digest.update(RULES[rule_id].summary.encode())
    digest.update(str(CACHE_VERSION).encode())
    return digest.hexdigest()


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _load_cache(cache_path: str) -> dict[str, object] | None:
    try:
        with open(cache_path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
        return None
    if raw.get("rules") != rules_signature():
        return None
    files = raw.get("files")
    if not isinstance(files, dict):
        return None
    return raw


def _finding_to_dict(finding: Finding) -> dict[str, object]:
    return {"rule": finding.rule, "path": finding.path,
            "line": finding.line, "col": finding.col,
            "message": finding.message}


def _finding_from_dict(raw: dict[str, object]) -> Finding:
    return Finding(rule=str(raw["rule"]), path=str(raw["path"]),
                   line=int(raw["line"]), col=int(raw["col"]),  # type: ignore[arg-type]
                   message=str(raw["message"]))


def _fingerprints(shas: dict[str, str],
                  imports: dict[str, list[str]]) -> dict[str, str]:
    """Transitive (file + imports) content fingerprints per path.

    BFS over the import graph; cycles (package SCCs) simply close over
    the same dependency set.
    """
    closure: dict[str, list[str]] = {}
    for path in shas:
        seen = {path}
        queue = [path]
        while queue:
            current = queue.pop()
            for dep in imports.get(current, ()):
                if dep not in seen and dep in shas:
                    seen.add(dep)
                    queue.append(dep)
        closure[path] = sorted(seen)
    prints: dict[str, str] = {}
    for path, deps in closure.items():
        digest = hashlib.sha256()
        for dep in deps:
            digest.update(dep.encode())
            digest.update(shas[dep].encode())
        prints[path] = digest.hexdigest()
    return prints


def analyze_with_cache(paths: Sequence[str], *, cache_path: str,
                       select: Sequence[str] | None = None,
                       interprocedural: bool = True) -> CacheResult:
    """Run the analysis over *paths* through the incremental cache."""
    if select:
        # Selector runs see a filtered rule set; caching them would
        # poison the full-run entries.  Bypass entirely.
        findings = analyze_modules(
            [make_module(path) for path in iter_sources(paths)],
            select=select, interprocedural=interprocedural)
        return CacheResult(findings, hit=False, reused_files=0,
                           analyzed_files=len(set(f.path for f in findings)))

    sources = [str(path) for path in iter_sources(paths)]
    contents = {path: Path(path).read_bytes() for path in sources}
    shas = {path: _sha256(data) for path, data in contents.items()}

    cache = _load_cache(cache_path)
    entries: dict[str, dict[str, object]] = {}
    if cache is not None:
        raw_files = cache.get("files")
        if isinstance(raw_files, dict):
            entries = {str(path): entry
                       for path, entry in raw_files.items()
                       if isinstance(entry, dict)}

    if (entries and set(entries) == set(shas)
            and all(entries[path].get("sha") == shas[path]
                    for path in shas)):
        findings = [_finding_from_dict(raw)  # type: ignore[arg-type]
                    for path in sorted(entries)
                    for raw in entries[path].get("findings", ())]  # type: ignore[union-attr]
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return CacheResult(findings, hit=True, reused_files=len(entries),
                           analyzed_files=0)

    modules = [make_module(path, contents[path].decode("utf-8"))
               for path in sources]

    # New import graph (as source paths) from the freshly built project.
    from .project import Project
    project = Project(modules) if interprocedural else None
    new_imports: dict[str, list[str]] = {}
    for module in modules:
        deps: list[str] = []
        if project is not None:
            for dep_name in project.module_imports.get(module.module, ()):
                dep = project.module_by_name.get(dep_name)
                if dep is not None:
                    deps.append(dep.path)
        new_imports[module.path] = sorted(set(deps))
    new_prints = _fingerprints(shas, new_imports)

    old_shas = {path: str(entry.get("sha", ""))
                for path, entry in entries.items()}
    old_imports = {path: [str(dep) for dep in entry.get("imports", ())]  # type: ignore[union-attr]
                   for path, entry in entries.items()}
    old_prints = _fingerprints(old_shas, old_imports) if entries else {}

    reusable = {path for path in sources
                if path in entries
                and old_shas.get(path) == shas[path]
                and old_prints.get(path) == new_prints[path]}
    stale = [path for path in sources if path not in reusable]

    fresh = analyze_modules(modules, interprocedural=interprocedural,
                            restrict_paths=set(stale), project=project)

    findings = list(fresh)
    for path in reusable:
        findings.extend(_finding_from_dict(raw)  # type: ignore[arg-type]
                        for raw in entries[path].get("findings", ()))  # type: ignore[union-attr]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    by_path: dict[str, list[Finding]] = {path: [] for path in sources}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    payload = {
        "version": CACHE_VERSION,
        "rules": rules_signature(),
        "files": {
            path: {
                "sha": shas[path],
                "imports": new_imports[path],
                "findings": [_finding_to_dict(f) for f in by_path[path]],
            }
            for path in sources
        },
    }
    tmp_path = f"{cache_path}.tmp{os.getpid()}"
    os.makedirs(os.path.dirname(cache_path) or ".", exist_ok=True)
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=0, sort_keys=True)
    os.replace(tmp_path, cache_path)

    return CacheResult(findings, hit=False, reused_files=len(reusable),
                       analyzed_files=len(stale))
