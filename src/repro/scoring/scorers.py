"""Element relevance scorers.

The paper leaves the content-scoring function open ("each
implementation of NEXI has its own ranking criteria, which generally
use well-established IR techniques"); what TReX requires of it is that
the per-term element score is a non-negative number and that the
per-query aggregation is *monotone*, so that the threshold algorithm's
stopping condition is sound.  Two standard scorers are provided:

* :class:`BM25Scorer` — Okapi BM25 with element-length normalization,
  the default (this is also what TopX, the paper's reference TA
  implementation, derives its scores from);
* :class:`TfIdfScorer` — lnc-style tf·idf, kept for ablations.

Both implement the :class:`ElementScorer` interface: a pure function of
(term, term frequency, element length) given frozen corpus statistics.
"""

from __future__ import annotations

import math

from .stats import ScoringStats

__all__ = ["ElementScorer", "BM25Scorer", "TfIdfScorer", "LMImpactScorer"]


class ElementScorer:
    """Interface: per-term element scores from (tf, element length)."""

    def __init__(self, stats: ScoringStats) -> None:
        self.stats = stats

    def score(self, term: str, tf: int, element_length: int) -> float:
        """Relevance contribution of *term* occurring *tf* times."""
        raise NotImplementedError

    def score_block(self, term: str, tfs: list[int],
                    lengths: list[int]) -> list[float]:
        """Vectorized :meth:`score` over parallel tf/length columns.

        ``score_block(t, tfs, lengths)[i] == score(t, tfs[i], lengths[i])``
        bitwise — subclasses hoist the per-term constants (idf, average
        length) out of the loop but must preserve the exact operation
        order of the scalar formula so the equality is float-exact, not
        approximate.  This generic fallback simply maps the scalar
        scorer, so any third-party scorer is batch-callable unchanged.
        """
        score = self.score
        return [score(term, tf, length) for tf, length in zip(tfs, lengths)]

    def idf(self, term: str) -> float:
        """Inverse document frequency; 0 for unseen terms."""
        raise NotImplementedError

    def max_score(self, term: str) -> float:
        """An upper bound on ``score(term, ...)`` over any element.

        Used by tests to validate the monotonicity assumptions of TA.
        """
        raise NotImplementedError


class BM25Scorer(ElementScorer):
    """Okapi BM25 adapted to element granularity.

    ``score(t, e) = idf(t) * tf*(k1+1) / (tf + k1*(1 - b + b*len(e)/avglen))``
    with the robust idf variant that never goes negative.
    """

    def __init__(self, stats: ScoringStats, k1: float = 1.2, b: float = 0.75) -> None:
        super().__init__(stats)
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError("BM25 requires k1 >= 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        # Terms unseen in the statistics snapshot (e.g. introduced by
        # documents added after construction) are smoothed as df = 1:
        # maximally rare.  Truly absent terms have no postings, so this
        # never conjures hits out of nothing.
        df = max(self.stats.df(term), 1)
        n = max(self.stats.num_documents, df)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, term: str, tf: int, element_length: int) -> float:
        if tf <= 0:
            return 0.0
        idf = self.idf(term)
        if idf == 0.0:
            return 0.0
        norm_len = element_length / self.stats.average_element_length
        denom = tf + self.k1 * (1.0 - self.b + self.b * norm_len)
        return idf * tf * (self.k1 + 1.0) / denom

    def score_block(self, term: str, tfs: list[int],
                    lengths: list[int]) -> list[float]:
        # One idf lookup and normalizer setup for the whole column; the
        # per-element arithmetic keeps the scalar formula's association
        # (``base + b*(len/avg)`` is ``1.0 - b + b*norm_len`` evaluated
        # left to right), so results are bitwise equal to score().
        idf = self.idf(term)
        if idf == 0.0:
            return [0.0] * len(tfs)
        k1, b = self.k1, self.b
        base = 1.0 - b
        k1_plus_1 = k1 + 1.0
        avg = self.stats.average_element_length
        return [idf * tf * k1_plus_1 / (tf + k1 * (base + b * (length / avg)))
                if tf > 0 else 0.0
                for tf, length in zip(tfs, lengths)]

    def max_score(self, term: str) -> float:
        # tf -> inf, len -> 0 bound: idf * (k1 + 1)
        return self.idf(term) * (self.k1 + 1.0)


class LMImpactScorer(ElementScorer):
    """Language-model impacts: the per-term form used by impact-ordered
    indexes, derived from query likelihood with Dirichlet smoothing.

    ``w(t, e) = ln(1 + tf · N / (μ · df(t)))`` — positive and monotone
    in ``tf``, so the sum aggregation stays TA-compatible.  (The
    element-length normalizer of the full Dirichlet model depends on
    the query length and cannot be precomputed per term; dropping it is
    the standard impact-index simplification.)
    """

    def __init__(self, stats: ScoringStats, mu: float = 200.0) -> None:
        super().__init__(stats)
        if mu <= 0:
            raise ValueError("Dirichlet mu must be positive")
        self.mu = mu

    def idf(self, term: str) -> float:
        df = max(self.stats.df(term), 1)  # unseen-term smoothing
        return max(self.stats.num_documents, df) / (self.mu * df)

    def score(self, term: str, tf: int, element_length: int) -> float:
        if tf <= 0:
            return 0.0
        ratio = self.idf(term)
        if ratio == 0.0:
            return 0.0
        return math.log(1.0 + tf * ratio)

    def score_block(self, term: str, tfs: list[int],
                    lengths: list[int]) -> list[float]:
        ratio = self.idf(term)
        if ratio == 0.0:
            return [0.0] * len(tfs)
        log = math.log
        return [log(1.0 + tf * ratio) if tf > 0 else 0.0 for tf in tfs]

    def max_score(self, term: str) -> float:
        # tf is bounded by the longest element's token capacity; use the
        # average element length scaled generously as a practical bound.
        bound_tf = max(1.0, self.stats.average_element_length * 64)
        return math.log(1.0 + bound_tf * self.idf(term))


class TfIdfScorer(ElementScorer):
    """Log-tf · idf with square-root length normalization."""

    def idf(self, term: str) -> float:
        df = max(self.stats.df(term), 1)  # unseen-term smoothing
        return math.log(1.0 + max(self.stats.num_documents, df) / df)

    def score(self, term: str, tf: int, element_length: int) -> float:
        if tf <= 0:
            return 0.0
        idf = self.idf(term)
        if idf == 0.0:
            return 0.0
        normalizer = math.sqrt(max(element_length, 1))
        return (1.0 + math.log(tf)) * idf / normalizer

    def score_block(self, term: str, tfs: list[int],
                    lengths: list[int]) -> list[float]:
        idf = self.idf(term)
        if idf == 0.0:
            return [0.0] * len(tfs)
        log, sqrt = math.log, math.sqrt
        return [(1.0 + log(tf)) * idf / sqrt(length if length > 1 else 1)
                if tf > 0 else 0.0
                for tf, length in zip(tfs, lengths)]

    def max_score(self, term: str) -> float:
        # tf is at most the element length, so score <= idf*(1+ln tf)/sqrt(tf),
        # whose maximum over tf >= 1 is 2/sqrt(e) at tf = e.
        return self.idf(term) * 2.0 / math.sqrt(math.e)
