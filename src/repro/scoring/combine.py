"""Score aggregation across terms and across about() clauses.

Within one retrieval task (a sid set and a term set), the score of an
element is the **sum** of its per-term scores — summation is the
monotone aggregation function both the threshold algorithm and Merge
rely on.

Across clauses, NEXI queries rank *target* elements (the ones selected
by the full query path) by their own content score plus a discounted
contribution from support clauses matched on their ancestors — e.g. in
``//article[about(., xml)]//sec[about(., retrieval)]`` a ``sec`` element
is ranked by its "retrieval" score plus ``support_weight`` times the
containing article's "xml" score.  This mirrors the common INEX
practice of ancestor score propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["sum_scores", "ClauseCombiner", "ScoredHit"]


def sum_scores(per_term_scores: Iterable[float]) -> float:
    """The monotone aggregation used by TA and Merge (plain sum)."""
    return float(sum(per_term_scores))


@dataclass(order=True)
class ScoredHit:
    """A scored element in a result list (sortable by score, then position)."""

    score: float
    docid: int = field(compare=True)
    end_pos: int = field(compare=True)
    sid: int = field(compare=False, default=0)
    length: int = field(compare=False, default=0)

    @property
    def start_pos(self) -> int:
        return self.end_pos - self.length

    def element_key(self) -> tuple[int, int]:
        return (self.docid, self.end_pos)

    def contains(self, other: "ScoredHit") -> bool:
        """Positional ancestor test between hits of the same document."""
        return (self.docid == other.docid
                and self.start_pos < other.start_pos
                and other.end_pos < self.end_pos)


class ClauseCombiner:
    """Combines target-clause hits with support-clause hits.

    Parameters
    ----------
    support_weight:
        Multiplier applied to each support clause's score before adding
        it to a contained target hit (0 disables support contribution;
        1 weighs ancestors equally).
    """

    def __init__(self, support_weight: float = 0.5) -> None:
        if support_weight < 0:
            raise ValueError("support_weight must be non-negative")
        self.support_weight = support_weight

    def combine(self, target_hits: list[ScoredHit],
                support_hit_lists: list[list[ScoredHit]]) -> list[ScoredHit]:
        """Add discounted ancestor scores to each target hit.

        Support hits are matched to targets by positional containment
        (the support element must be an ancestor of the target in the
        same document).  Hits keep their identity; only scores change.
        Returns a new list sorted by descending combined score.
        """
        if not support_hit_lists or self.support_weight == 0:
            combined = list(target_hits)
        else:
            by_doc: dict[int, list[ScoredHit]] = {}
            for hits in support_hit_lists:
                for hit in hits:
                    by_doc.setdefault(hit.docid, []).append(hit)
            combined = []
            for target in target_hits:
                bonus = 0.0
                for support in by_doc.get(target.docid, ()):
                    if support.contains(target) or support.element_key() == target.element_key():
                        bonus += support.score
                combined.append(ScoredHit(
                    score=target.score + self.support_weight * bonus,
                    docid=target.docid,
                    end_pos=target.end_pos,
                    sid=target.sid,
                    length=target.length,
                ))
        combined.sort(key=lambda h: (-h.score, h.docid, h.end_pos))
        return combined
