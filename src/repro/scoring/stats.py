"""Corpus statistics snapshot used by the scorers.

Scorers must be usable both at index-build time (to fill RPL/ERPL
entries) and at query time (ERA scores elements on the fly), and the
two must agree exactly — the consistency of the retrieval
strategies depends on it.  To make that easy to guarantee, scorers
read from an immutable :class:`ScoringStats` snapshot taken from a
collection once.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from ..corpus.collection import Collection

__all__ = ["ScoringStats"]


@dataclass(frozen=True)
class ScoringStats:
    """Immutable corpus statistics for scoring.

    ``document_frequency`` maps a term to the number of *documents*
    containing it; element-level scores derive their idf from this, as
    is standard in XML retrieval (element-level df would make deeply
    repeated terms vanish).
    """

    num_documents: int
    num_elements: int
    average_element_length: float
    document_frequency: Mapping[str, int]

    @classmethod
    def from_collection(cls, collection: Collection) -> "ScoringStats":
        stats = collection.stats
        return cls(
            num_documents=stats.num_documents,
            num_elements=stats.num_elements,
            average_element_length=stats.average_element_length or 1.0,
            document_frequency=MappingProxyType(dict(stats.document_frequency)),
        )

    def df(self, term: str) -> int:
        return self.document_frequency.get(term, 0)

    def __reduce__(self) -> tuple:
        # MappingProxyType is not picklable; ship a plain dict and
        # re-wrap on load so build workers receive the same immutable
        # snapshot the parent scored with.
        return (_rebuild_stats, (self.num_documents, self.num_elements,
                                 self.average_element_length,
                                 dict(self.document_frequency)))


def _rebuild_stats(num_documents: int, num_elements: int,
                   average_element_length: float,
                   document_frequency: dict[str, int]) -> ScoringStats:
    return ScoringStats(
        num_documents=num_documents,
        num_elements=num_elements,
        average_element_length=average_element_length,
        document_frequency=MappingProxyType(document_frequency),
    )
