"""Relevance scoring: corpus stats, BM25/tf-idf scorers, aggregation."""

from .combine import ClauseCombiner, ScoredHit, sum_scores
from .scorers import BM25Scorer, ElementScorer, LMImpactScorer, TfIdfScorer
from .stats import ScoringStats

__all__ = [
    "ClauseCombiner",
    "ScoredHit",
    "sum_scores",
    "BM25Scorer",
    "ElementScorer",
    "LMImpactScorer",
    "TfIdfScorer",
    "ScoringStats",
]
