"""TReX reproduction: self-managing top-k (summary, keyword) indexes
for XML retrieval (Consens, Gu, Kanza, Rizzolo -- ICDE 2007).

Quickstart::

    from repro import SyntheticIEEECorpus, TrexEngine, AliasMapping, IncomingSummary

    collection = SyntheticIEEECorpus(num_docs=50).build()
    summary = IncomingSummary(collection, alias=AliasMapping.inex_ieee())
    engine = TrexEngine(collection, summary)
    results = engine.evaluate(
        "//article[about(., xml)]//sec[about(., query evaluation)]", k=10)
    for hit in results:
        print(hit.score, hit.docid, hit.end_pos)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from .corpus import (
    AliasMapping,
    Collection,
    Document,
    SyntheticIEEECorpus,
    SyntheticWikipediaCorpus,
    Tokenizer,
    XMLParser,
    parse_document,
)
from .evaluation import qrels_for_query, read_run, score_result, write_run
from .nexi import NexiQuery, parse_nexi, translate_query
from .retrieval import EvaluationStats, ResultSet, TrexEngine, make_snippet
from .scoring import BM25Scorer, LMImpactScorer, ScoredHit, ScoringStats, TfIdfScorer
from .selfmanage import (
    GreedyIndexSelector,
    IlpIndexSelector,
    IndexAdvisor,
    Workload,
    WorkloadQuery,
)
from .selfmanage import WorkloadGenerator
from .storage import Charge, CostModel
from .summary import AKIndex, FBIndex, IncomingSummary, TagSummary

__version__ = "1.0.0"

__all__ = [
    "AliasMapping",
    "Collection",
    "Document",
    "SyntheticIEEECorpus",
    "SyntheticWikipediaCorpus",
    "Tokenizer",
    "XMLParser",
    "parse_document",
    "NexiQuery",
    "parse_nexi",
    "translate_query",
    "EvaluationStats",
    "ResultSet",
    "TrexEngine",
    "BM25Scorer",
    "ScoredHit",
    "ScoringStats",
    "TfIdfScorer",
    "GreedyIndexSelector",
    "IlpIndexSelector",
    "IndexAdvisor",
    "Workload",
    "WorkloadQuery",
    "Charge",
    "CostModel",
    "AKIndex",
    "FBIndex",
    "IncomingSummary",
    "TagSummary",
    "LMImpactScorer",
    "WorkloadGenerator",
    "make_snippet",
    "qrels_for_query",
    "read_run",
    "score_result",
    "write_run",
    "__version__",
]
