"""Exception hierarchy for the TReX reproduction.

All library errors derive from :class:`TrexError` so that callers can
catch a single base class.  Subsystems raise the most specific subclass
that applies.
"""

from __future__ import annotations


class TrexError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(TrexError):
    """A storage-engine invariant was violated (bad key, closed tree, ...)."""


class CodecError(StorageError):
    """A value could not be encoded to, or decoded from, bytes."""


class StorageCorruptionError(StorageError):
    """A persisted index image is torn, truncated or malformed.

    Raised (instead of ``struct.error``/``IndexError``/``zlib.error``)
    whenever a store read cannot be completed because the bytes on disk
    are not a well-formed image.  The message always carries the path
    (or blob name) and, when known, the sequence/segment id, so an
    operator can tell *which* artifact to restore from a replica.
    """

    def __init__(self, source: str, detail: str,
                 sequence_id: int | None = None) -> None:
        where = source if sequence_id is None else f"{source} (segment {sequence_id})"
        super().__init__(f"{where}: {detail}")
        self.source = source
        self.detail = detail
        self.sequence_id = sequence_id


class SchemaError(StorageError):
    """A row does not conform to its table schema."""


class XMLParseError(TrexError):
    """The positional XML parser rejected its input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class NexiSyntaxError(TrexError):
    """A NEXI query string could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


class SummaryError(TrexError):
    """A structural summary was used in an unsupported way."""


class RetrievalError(TrexError):
    """Query evaluation failed (missing index, bad method name, ...)."""


class MissingIndexError(RetrievalError):
    """A retrieval strategy requires an index that is not materialized."""

    def __init__(self, kind: str, term: str | None = None, sid: int | None = None) -> None:
        detail = kind
        if term is not None:
            detail += f" for term {term!r}"
        if sid is not None:
            detail += f" (sid {sid})"
        super().__init__(f"required index not materialized: {detail}")
        self.kind = kind
        self.term = term
        self.sid = sid


class WorkloadError(TrexError):
    """A workload definition is invalid (frequencies, duplicate ids, ...)."""


class ServiceError(TrexError):
    """A failure in the concurrent query-serving layer."""


class LockUsageError(ServiceError):
    """A concurrency primitive was used outside its protocol (e.g. a
    release without a matching acquire)."""


class SanitizerError(TrexError):
    """Base class for failures reported by the runtime sanitizer
    (``REPRO_SANITIZE=1``); see :mod:`repro.sanitizer`."""


class LockOrderViolation(SanitizerError):
    """Two locks were acquired in opposite orders on different paths —
    a latent deadlock."""

    def __init__(self, first: str, second: str, prior_site: str, site: str) -> None:
        super().__init__(
            f"lock-order inversion: {second!r} acquired while holding "
            f"{first!r} at {site}, but the opposite order was recorded "
            f"at {prior_site}")
        self.first = first
        self.second = second
        self.prior_site = prior_site
        self.site = site


class UnguardedMutationError(SanitizerError):
    """Engine state registered as lock-guarded was mutated by a thread
    that does not hold the writer side of the guarding RW lock."""


class UnknownStatKeyError(SanitizerError):
    """A telemetry key was emitted that is not declared in the central
    stats registry (:mod:`repro.service.registry`)."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(
            f"unregistered telemetry {kind} key {name!r}; declare it in "
            f"repro.service.registry")
        self.kind = kind
        self.name = name


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request because the queue is full."""

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"service overloaded: admission queue is full ({queue_depth} pending)")
        self.queue_depth = queue_depth


class ServiceClosedError(ServiceError):
    """A request arrived after the service began shutting down."""


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before a worker could start it."""

    def __init__(self, waited: float, deadline: float) -> None:
        super().__init__(
            f"deadline exceeded: queued for {waited:.3f}s "
            f"with a {deadline:.3f}s deadline")
        self.waited = waited
        self.deadline = deadline


class OptimizationError(TrexError):
    """Index-selection optimization failed or was given bad inputs."""


class AnalysisError(TrexError):
    """The static-analysis tool (:mod:`repro.analysis`) was misused or
    hit an unreadable input."""


class ShardError(TrexError):
    """A failure in the partitioned (sharded) engine layer."""


class ShardTimeoutError(ShardError):
    """A shard exceeded its per-shard deadline and fail-soft was off."""

    def __init__(self, shard_index: int, elapsed: float, deadline: float) -> None:
        super().__init__(
            f"shard {shard_index} exceeded its deadline: "
            f"ran {elapsed:.3f}s against a {deadline:.3f}s budget")
        self.shard_index = shard_index
        self.elapsed = elapsed
        self.deadline = deadline


class ReplicaError(TrexError):
    """A failure in the replica-group layer (:mod:`repro.replica`)."""


class ReplicaFaultError(ReplicaError):
    """One replica failed while serving a read.

    Raised by the liveness check of a read lease — either because the
    replica was killed (process death simulation) or because a fault
    was injected by the test hook.  The group catches this and fails
    the read over to a healthy sibling; it only escapes the group when
    every sibling is faulty too (see :class:`ReplicaQuorumError`).
    """

    def __init__(self, replica_index: int, reason: str = "replica fault") -> None:
        super().__init__(f"replica {replica_index} failed: {reason}")
        self.replica_index = replica_index
        self.reason = reason


class ReplicaQuorumError(ReplicaError):
    """No healthy replica is left to serve a read.

    Under ``fail_soft`` the coordinator degrades the query (the shard's
    contribution is dropped and the result is tagged ``degraded``);
    otherwise this propagates to the caller as a hard failure.
    """

    def __init__(self, group: str, healthy: int, total: int) -> None:
        super().__init__(
            f"replica group {group!r} lost quorum: "
            f"{healthy} of {total} replicas healthy")
        self.group = group
        self.healthy = healthy
        self.total = total


class ReplicaDivergenceError(ReplicaError):
    """A shipped replication record did not apply cleanly on a follower
    (segment-id mismatch or a missing target segment) — the follower's
    catalog has diverged from the leader's."""
